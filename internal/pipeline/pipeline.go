package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Pass is one stage of the allocation pipeline. A pass reads and
// writes the State blackboard, requests analyses from the
// AnalysisManager, and declares which analyses survive it: the runner
// invalidates everything else after the pass runs.
type Pass interface {
	// Name identifies the pass; it is also the phase label of the
	// obs phase events the runner emits around Run.
	Name() string
	// Run executes the pass against the shared state.
	Run(s *State) error
	// Preserves reports which analyses remain valid after Run. Pure
	// analysis and query passes return PreserveAll; passes that
	// rewrite the function return PreserveNone.
	Preserves() AnalysisSet
}

// Skipper is an optional Pass extension: a pass may decline to run
// this round (the spill-rewrite pass skips when the round converged).
// A skipped pass emits no phase events and invalidates nothing.
type Skipper interface {
	Skip(s *State) bool
}

// PostPhaser is an optional Pass extension: a hook that runs after the
// pass's phase-end event is emitted, for trailing events that belong
// outside the timed phase window (the build pass reports prep-cache
// hits this way).
type PostPhaser interface {
	PostPhase(s *State)
}

// Pipeline is an ordered pass list with value semantics: Replace and
// Drop return edited copies, so ablations can derive variants from a
// shared default without aliasing. The zero value is an empty
// pipeline.
type Pipeline struct {
	passes []Pass
}

// New builds a pipeline from passes in order.
func New(passes ...Pass) Pipeline {
	return Pipeline{passes: passes}
}

// Passes returns the pass list. Callers must not mutate it; use
// Replace and Drop to derive variants.
func (p Pipeline) Passes() []Pass { return p.passes }

// Names returns the pass names in order.
func (p Pipeline) Names() []string {
	names := make([]string, len(p.passes))
	for i, pass := range p.passes {
		names[i] = pass.Name()
	}
	return names
}

// String renders the pipeline as "a → b → c".
func (p Pipeline) String() string { return strings.Join(p.Names(), " → ") }

// Replace returns a copy of the pipeline with the named pass replaced
// by np. A name that matches no pass leaves the copy identical.
func (p Pipeline) Replace(name string, np Pass) Pipeline {
	out := make([]Pass, len(p.passes))
	copy(out, p.passes)
	for i, pass := range out {
		if pass.Name() == name {
			out[i] = np
		}
	}
	return Pipeline{passes: out}
}

// Drop returns a copy of the pipeline with the named pass removed. A
// name that matches no pass leaves the copy identical.
func (p Pipeline) Drop(name string) Pipeline {
	out := make([]Pass, 0, len(p.passes))
	for _, pass := range p.passes {
		if pass.Name() != name {
			out = append(out, pass)
		}
	}
	return Pipeline{passes: out}
}

// DefaultMaxRounds bounds the build→color→spill iteration when the
// caller does not: each round retires at least one live range to
// memory, so a round count this deep means the allocation is not
// converging (or the function is pathological) and deserves an error
// rather than more work.
const DefaultMaxRounds = 32

// ErrRoundLimit reports that the round budget was exhausted before a
// spill-free coloring was reached. Callers detect it with errors.Is.
var ErrRoundLimit = errors.New("round budget exhausted without a spill-free coloring")

// Runner executes a pass pipeline round by round until the state
// converges (a sweep ends with an empty spill set) or the round budget
// runs out.
type Runner struct {
	// Passes is the pipeline to execute each round.
	Passes []Pass
	// MaxRounds bounds the number of sweeps; 0 means DefaultMaxRounds.
	MaxRounds int
}

// Run drives s through the pipeline. It returns the number of rounds
// executed; on failure the error is either a pass error or wraps
// ErrRoundLimit.
//
// The runner owns the observability contract of the loop: when a
// tracer is attached, every executed pass is bracketed by PhaseStart
// and PhaseEnd events carrying the pass name and measured wall time —
// individual passes never emit their own phase events. Untraced runs
// construct no events at all. When global telemetry is enabled
// (telemetry.Enable), the runner additionally feeds the pass-timing
// histograms and the allocation counters; with telemetry off that
// costs one atomic load per Run.
func (r *Runner) Run(s *State) (rounds int, err error) {
	maxRounds := r.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	traced := s.Traced()
	tele := telemetry.B()
	timed := traced || tele != nil
	var t0 time.Time
	finish := func(rounds int) {
		if tele != nil {
			tele.AllocFuncs.Inc()
			tele.AllocRounds.Add(int64(rounds))
			tele.Rounds.Observe(float64(rounds))
		}
	}
	for round := 0; round < maxRounds; round++ {
		s.BeginRound(round)
		for _, p := range r.Passes {
			if s.Ctx != nil {
				if err := s.Ctx.Err(); err != nil {
					finish(round)
					return round, err
				}
			}
			if sk, ok := p.(Skipper); ok && sk.Skip(s) {
				continue
			}
			if traced {
				s.Tracer.Emit(obs.Event{Kind: obs.KindPhaseStart, Fn: s.Fn.Name, Round: round, Phase: p.Name()})
			}
			if timed {
				t0 = time.Now()
			}
			if err := p.Run(s); err != nil {
				finish(round)
				return round, fmt.Errorf("pass %s: %w", p.Name(), err)
			}
			if timed {
				dur := time.Since(t0)
				if traced {
					s.Tracer.Emit(obs.Event{Kind: obs.KindPhaseEnd, Fn: s.Fn.Name, Round: round, Phase: p.Name(), Dur: dur})
				}
				if tele != nil {
					tele.PassRuns.Inc()
					tele.PhaseDur(p.Name()).Observe(float64(dur.Nanoseconds()) / 1e3)
				}
			}
			s.AM.Invalidate(p.Preserves())
			if pp, ok := p.(PostPhaser); ok {
				pp.PostPhase(s)
			}
		}
		if tele != nil {
			tele.SpilledRegs.Add(int64(len(s.SpillSet)))
		}
		if s.Converged() {
			finish(round + 1)
			return round + 1, nil
		}
	}
	finish(maxRounds)
	return maxRounds, fmt.Errorf("%w after %d rounds", ErrRoundLimit, maxRounds)
}
