package pipeline_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

const testSrc = `
int f(int a, int b) { return a + b; }
int main() { return f(1, 2); }`

func testFunc(t *testing.T) *ir.Func {
	t.Helper()
	prog, err := compile.Source(testSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog.FuncByName["f"]
}

func TestAnalysisSetOps(t *testing.T) {
	s := pipeline.NewSet(pipeline.AnalysisCFG, pipeline.AnalysisLiveness)
	if !s.Has(pipeline.AnalysisCFG) || !s.Has(pipeline.AnalysisLiveness) {
		t.Error("members missing from NewSet result")
	}
	if s.Has(pipeline.AnalysisInterference) {
		t.Error("non-member reported present")
	}
	s = s.With(pipeline.AnalysisInterference)
	if !s.Has(pipeline.AnalysisInterference) {
		t.Error("With did not add")
	}
	s = s.Without(pipeline.AnalysisCFG)
	if s.Has(pipeline.AnalysisCFG) {
		t.Error("Without did not remove")
	}
	if pipeline.PreserveAll.String() != "all" || pipeline.PreserveNone.String() != "none" {
		t.Errorf("sentinel strings: %q / %q", pipeline.PreserveAll, pipeline.PreserveNone)
	}
	got := pipeline.NewSet(pipeline.AnalysisLiveness, pipeline.AnalysisLiveRanges).String()
	if got != "liveness+liveranges" {
		t.Errorf("set string = %q", got)
	}
	for a := pipeline.Analysis(0); a < pipeline.NumAnalyses; a++ {
		if a.String() == "unknown" {
			t.Errorf("analysis %d has no name", a)
		}
	}
}

// stub is a scriptable Pass for runner tests.
type stub struct {
	name      string
	preserves pipeline.AnalysisSet
	run       func(*pipeline.State) error
	skip      func(*pipeline.State) bool
	post      func(*pipeline.State)
}

func (s stub) Name() string                    { return s.name }
func (s stub) Preserves() pipeline.AnalysisSet { return s.preserves }
func (s stub) Skip(st *pipeline.State) bool    { return s.skip != nil && s.skip(st) }
func (s stub) PostPhase(st *pipeline.State) {
	if s.post != nil {
		s.post(st)
	}
}
func (s stub) Run(st *pipeline.State) error {
	if s.run != nil {
		return s.run(st)
	}
	return nil
}

func TestPipelineEditOps(t *testing.T) {
	a := stub{name: "a", preserves: pipeline.PreserveAll}
	b := stub{name: "b", preserves: pipeline.PreserveAll}
	c := stub{name: "c", preserves: pipeline.PreserveNone}
	pl := pipeline.New(a, b, c)

	if got, want := fmt.Sprint(pl.Names()), "[a b c]"; got != want {
		t.Errorf("Names = %s, want %s", got, want)
	}
	if pl.String() != "a → b → c" {
		t.Errorf("String = %q", pl.String())
	}

	replaced := pl.Replace("b", stub{name: "b2"})
	if got := fmt.Sprint(replaced.Names()); got != "[a b2 c]" {
		t.Errorf("Replace: %s", got)
	}
	dropped := pl.Drop("b")
	if got := fmt.Sprint(dropped.Names()); got != "[a c]" {
		t.Errorf("Drop: %s", got)
	}
	// Value semantics: the original pipeline is untouched by edits.
	if got := fmt.Sprint(pl.Names()); got != "[a b c]" {
		t.Errorf("original mutated by edits: %s", got)
	}
	// Editing a missing name is a no-op, not a panic.
	if got := fmt.Sprint(pl.Replace("zzz", stub{name: "x"}).Names()); got != "[a b c]" {
		t.Errorf("Replace of missing name changed the pipeline: %s", got)
	}
	if got := fmt.Sprint(pl.Drop("zzz").Names()); got != "[a b c]" {
		t.Errorf("Drop of missing name changed the pipeline: %s", got)
	}
}

func newTestState(t *testing.T) *pipeline.State {
	t.Helper()
	cache := pipeline.NewFuncCache(testFunc(t))
	return pipeline.NewState(cache, nil, machine.NewConfig(8, 6, 4, 4), nil)
}

func TestRunnerRoundLimit(t *testing.T) {
	// A pass that spills every round never converges; the runner must
	// stop at the budget with a descriptive, matchable error.
	spin := stub{name: "spin", preserves: pipeline.PreserveAll, run: func(s *pipeline.State) error {
		s.SpillSet = map[ir.Reg]*ir.Symbol{1: nil}
		return nil
	}}
	r := &pipeline.Runner{Passes: []pipeline.Pass{spin}, MaxRounds: 3}
	rounds, err := r.Run(newTestState(t))
	if !errors.Is(err, pipeline.ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if rounds != 3 {
		t.Errorf("rounds = %d, want 3", rounds)
	}
}

func TestRunnerConvergesWhenSpillSetEmpties(t *testing.T) {
	spillOnce := stub{name: "once", preserves: pipeline.PreserveAll, run: func(s *pipeline.State) error {
		if s.Round == 0 {
			s.SpillSet = map[ir.Reg]*ir.Symbol{1: nil}
		}
		return nil
	}}
	r := &pipeline.Runner{Passes: []pipeline.Pass{spillOnce}}
	rounds, err := r.Run(newTestState(t))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
}

func TestRunnerPassErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := stub{name: "bad", run: func(*pipeline.State) error { return boom }}
	r := &pipeline.Runner{Passes: []pipeline.Pass{bad}}
	if _, err := r.Run(newTestState(t)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunnerSkipAndHooks(t *testing.T) {
	var ran, posted []string
	mk := func(name string, skip bool) stub {
		return stub{
			name:      name,
			preserves: pipeline.PreserveAll,
			skip:      func(*pipeline.State) bool { return skip },
			run:       func(*pipeline.State) error { ran = append(ran, name); return nil },
			post:      func(*pipeline.State) { posted = append(posted, name) },
		}
	}
	r := &pipeline.Runner{Passes: []pipeline.Pass{mk("a", false), mk("b", true), mk("c", false)}}
	if _, err := r.Run(newTestState(t)); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(ran); got != "[a c]" {
		t.Errorf("ran %s; a skipped pass must not run", got)
	}
	if got := fmt.Sprint(posted); got != "[a c]" {
		t.Errorf("posted %s; a skipped pass must not fire PostPhase", got)
	}
}

func TestRunnerInvalidationFollowsPreserves(t *testing.T) {
	var afterMark, afterKeep, afterWipe pipeline.AnalysisSet
	mark := stub{name: "mark", preserves: pipeline.PreserveAll,
		run: func(s *pipeline.State) error {
			s.AM.MarkValid(pipeline.AnalysisCFG)
			s.AM.MarkValid(pipeline.AnalysisLiveness)
			return nil
		},
		post: func(s *pipeline.State) { afterMark = s.AM.Valid() }}
	keep := stub{name: "keep", preserves: pipeline.NewSet(pipeline.AnalysisCFG),
		post: func(s *pipeline.State) { afterKeep = s.AM.Valid() }}
	wipe := stub{name: "wipe", preserves: pipeline.PreserveNone,
		post: func(s *pipeline.State) { afterWipe = s.AM.Valid() }}
	r := &pipeline.Runner{Passes: []pipeline.Pass{mark, keep, wipe}}
	if _, err := r.Run(newTestState(t)); err != nil {
		t.Fatal(err)
	}
	if !afterMark.Has(pipeline.AnalysisCFG) || !afterMark.Has(pipeline.AnalysisLiveness) {
		t.Errorf("after mark: %v", afterMark)
	}
	if !afterKeep.Has(pipeline.AnalysisCFG) || afterKeep.Has(pipeline.AnalysisLiveness) {
		t.Errorf("after keep: %v — preserved set not applied", afterKeep)
	}
	if afterWipe != pipeline.PreserveNone {
		t.Errorf("after wipe: %v, want none", afterWipe)
	}
}

func TestAnalysisManagerServesCacheViews(t *testing.T) {
	fn := testFunc(t)
	cache := pipeline.NewFuncCache(fn)

	am1 := pipeline.NewAnalysisManager(cache)
	if !am1.FromCache() {
		t.Fatal("fresh manager should be on the cached function")
	}
	live1, hit := am1.Liveness(false)
	if hit {
		t.Error("first liveness request against a cold cache reported a hit")
	}
	if live1 == cache.Liveness() {
		t.Error("manager handed out the shared liveness Info instead of a fork")
	}

	am2 := pipeline.NewAnalysisManager(cache)
	if _, hit := am2.Liveness(false); !hit {
		t.Error("second manager on the same cache missed")
	}

	if hit := am1.Interference(false); hit {
		t.Error("first interference request against a cold cache reported a hit")
	}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		base := am1.Base(c)
		if base == cache.BaseGraph(c) {
			t.Errorf("class %v: manager handed out the shared base graph, not a snapshot", c)
		}
		if !interference.EdgesEqual(base, cache.BaseGraph(c)) {
			t.Errorf("class %v: snapshot view disagrees with the cached graph", c)
		}
	}
	if hit := pipeline.NewAnalysisManager(cache).Interference(false); !hit {
		t.Error("warm interference request missed")
	}
}

func TestAnalysisManagerInvalidationAndSetFunc(t *testing.T) {
	fn := testFunc(t)
	am := pipeline.NewAnalysisManager(pipeline.NewFuncCache(fn))
	am.Liveness(false)
	am.Interference(false)
	if v := am.Valid(); !v.Has(pipeline.AnalysisLiveness) || !v.Has(pipeline.AnalysisInterference) {
		t.Fatalf("valid = %v after materializing", v)
	}
	am.Invalidate(pipeline.NewSet(pipeline.AnalysisCFG))
	if v := am.Valid(); v.Has(pipeline.AnalysisLiveness) || !v.Has(pipeline.AnalysisCFG) {
		t.Errorf("valid = %v after partial invalidation", v)
	}

	clone := fn.Clone()
	am.SetFunc(clone)
	if am.FromCache() {
		t.Error("manager still claims the cached function after SetFunc")
	}
	if am.Valid() != pipeline.PreserveNone {
		t.Errorf("valid = %v after SetFunc, want none", am.Valid())
	}
	// Recomputation now targets the clone, not the cache.
	live, hit := am.Liveness(false)
	if hit || live == nil {
		t.Errorf("post-rewrite liveness: hit=%v live=%v", hit, live)
	}
}

func TestStateCloneFnIsLazyAndIdempotent(t *testing.T) {
	s := newTestState(t)
	orig := s.Fn
	s.CloneFn()
	if s.Fn == orig {
		t.Fatal("CloneFn did not clone")
	}
	clone := s.Fn
	s.CloneFn()
	if s.Fn != clone {
		t.Error("second CloneFn cloned again; the clone must be reused")
	}
	if s.Orig != orig {
		t.Error("original pointer lost")
	}
}

func TestStateWorkGraphsFillsMissingEntries(t *testing.T) {
	s := newTestState(t)
	s.AM.Liveness(false)
	s.AM.Interference(false)
	graphs := s.WorkGraphs()
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		if graphs[c] == nil {
			t.Fatalf("class %v: WorkGraphs left a nil entry", c)
		}
		if graphs[c] == s.AM.Base(c) {
			t.Errorf("class %v: WorkGraphs handed out the base graph, not a snapshot", c)
		}
	}
}
