package pipeline

import (
	"sync"

	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
)

// FuncCache caches the round-0 artifacts of one function that depend
// only on its IR — never on the strategy or the register configuration:
// the CFG, the liveness Info, and the per-class base interference
// graphs. Every allocation of the same function (a figure sweep runs
// dozens) shares one build; the AnalysisManager consumes the cache
// through copy-on-write interference.Snapshot views and liveness forks,
// so the cached artifacts stay frozen and may be used from many
// goroutines at once.
//
// Two further artifacts are configuration-independent and cached on
// top: the aggressively-coalesced round-0 graphs (the aggressive merge
// loop never reads k) and the round-0 live-range analysis per frequency
// table. They serve the default untraced coalesce configuration; every
// other mode falls back to computing its own from the base snapshots.
//
// The zero value is not usable; construct with NewFuncCache. All
// methods are safe for concurrent use.
type FuncCache struct {
	// Fn is the cached function. It must not be mutated once cached;
	// the allocator works on copy-on-write views and clones it lazily
	// before inserting spill code.
	Fn *ir.Func

	liveOnce sync.Once
	cfg      *cfg.Graph
	live     *liveness.Info

	baseOnce sync.Once
	base     [ir.NumClasses]*interference.Graph

	coalOnce  sync.Once
	coalesced [ir.NumClasses]*interference.Graph

	bmOnce sync.Once
	bm     *liverange.BlockMap

	mu     sync.Mutex
	ranges map[*freq.FuncFreq]*liverange.Set
}

// NewFuncCache wraps fn in an empty cache; artifacts are built lazily
// on first use.
func NewFuncCache(fn *ir.Func) *FuncCache { return &FuncCache{Fn: fn} }

// EnsureLive builds the CFG and liveness once. It reports whether this
// call did the work (i.e. the cache missed).
func (p *FuncCache) EnsureLive() (computed bool) {
	p.liveOnce.Do(func() {
		p.cfg = cfg.New(p.Fn)
		p.live = liveness.Compute(p.Fn, p.cfg)
		computed = true
	})
	return computed
}

// EnsureBase builds the per-class base interference graphs once. It
// reports whether this call did the work.
func (p *FuncCache) EnsureBase() (computed bool) {
	p.baseOnce.Do(func() {
		p.EnsureLive()
		live := p.live.Fork()
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			p.base[c] = interference.Build(p.Fn, live, c)
		}
		computed = true
	})
	return computed
}

// CFG returns the cached control-flow graph.
func (p *FuncCache) CFG() *cfg.Graph {
	p.EnsureLive()
	return p.cfg
}

// Liveness returns the cached liveness result. It is frozen: callers
// that walk it must do so through their own Fork.
func (p *FuncCache) Liveness() *liveness.Info {
	p.EnsureLive()
	return p.live
}

// BaseGraph returns the frozen base interference graph of one bank.
// Callers that mutate must go through Snapshot.
func (p *FuncCache) BaseGraph(c ir.Class) *interference.Graph {
	p.EnsureBase()
	return p.base[c]
}

// Coalesced returns the frozen aggressively-coalesced round-0 graphs,
// building them once from base snapshots. The union-find is fully
// compressed before freezing so snapshot readers resolve Find in one
// hop.
func (p *FuncCache) Coalesced() *[ir.NumClasses]*interference.Graph {
	p.coalOnce.Do(func() {
		p.EnsureBase()
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			g := p.base[c].Snapshot()
			// Aggressive coalescing never reads k, so one merged graph
			// serves every register configuration.
			g.Coalesce(false, 0)
			g.Compress()
			p.coalesced[c] = g
		}
	})
	return &p.coalesced
}

// BlockMap returns the frozen round-0 live-range block map, built once
// from the cached liveness. Like the other shared artifacts it must
// not be mutated; incremental updates go through Clone.
func (p *FuncCache) BlockMap() *liverange.BlockMap {
	p.bmOnce.Do(func() {
		p.EnsureLive()
		p.bm = liverange.NewBlockMap(p.Fn, p.live.Fork())
	})
	return p.bm
}

// RangesFor returns the round-0 live-range analysis under ff, cached
// per frequency table. Round 0 has no spill temporaries yet, so the
// no-spill predicate is constant false and the result is shared by
// every cell that allocates this function under ff.
func (p *FuncCache) RangesFor(ff *freq.FuncFreq) *liverange.Set {
	cg := p.Coalesced()
	bm := p.BlockMap()
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.ranges[ff]; ok {
		return s
	}
	var graphs [ir.NumClasses]*interference.Graph
	for c := range cg {
		graphs[c] = cg[c].Snapshot()
	}
	live := p.live.Fork()
	s := liverange.AnalyzeWith(bm, p.Fn, live, &graphs, ff, func(ir.Reg) bool { return false })
	if p.ranges == nil {
		p.ranges = make(map[*freq.FuncFreq]*liverange.Set)
	}
	p.ranges[ff] = s
	return s
}
