// Package pipeline turns the register-allocation driver into an
// explicit pass pipeline: a typed Pass interface, a Pipeline that can
// be mutated (passes dropped, replaced, inserted) to express ablations
// as pipeline edits instead of boolean option plumbing, a Runner that
// executes one build→color→spill round per sweep and emits per-pass
// obs phase events automatically, and an AnalysisManager that owns the
// analysis artifacts (CFG, liveness, interference graphs, live ranges)
// with validity tracking driven by each pass's preserved set.
//
// The AnalysisManager subsumes the shared round-0 prep cache (FuncCache,
// formerly regalloc.PreparedFunc): while the working function is still
// the prepared original, a "valid" analysis is served as a copy-on-write
// view of the shared frozen artifact; after a spill rewrite invalidates
// it, the analysis is recomputed — incrementally where possible (the
// interference graphs go through Reconstruct, seeded by the stale
// graphs the manager retains).
//
// The concrete passes of the allocator (liveness, build-graph,
// coalesce, liverange, color, spill-rewrite) live in package regalloc,
// which depends on this package; the framework guarantees — identical
// output at any worker count, shared artifacts never written, phase
// events in program order — are unchanged from the pre-pipeline driver
// and pinned by a differential test against it.
package pipeline

import "strings"

// Analysis identifies one managed analysis artifact.
type Analysis uint8

const (
	// AnalysisCFG is the control-flow graph of the working function.
	AnalysisCFG Analysis = iota
	// AnalysisLiveness is the dataflow liveness solution.
	AnalysisLiveness
	// AnalysisInterference is the per-class base (uncoalesced)
	// interference graphs.
	AnalysisInterference
	// AnalysisLiveRanges is the cost/benefit live-range analysis.
	AnalysisLiveRanges
	// AnalysisBlockMap is the per-register live-or-referenced block map
	// feeding the live-range Size metric (liverange.BlockMap).
	AnalysisBlockMap

	// NumAnalyses is the number of managed analyses.
	NumAnalyses
)

// String names the analysis.
func (a Analysis) String() string {
	switch a {
	case AnalysisCFG:
		return "cfg"
	case AnalysisLiveness:
		return "liveness"
	case AnalysisInterference:
		return "interference"
	case AnalysisLiveRanges:
		return "liveranges"
	case AnalysisBlockMap:
		return "blockmap"
	}
	return "unknown"
}

// AnalysisSet is a bit set of analyses. A pass reports the set it
// preserves; the runner intersects the manager's valid set with it
// after the pass runs.
type AnalysisSet uint32

// The two common preserved sets: pure analysis and query passes
// preserve everything; a pass that rewrites the function (spill-code
// insertion) preserves nothing.
const (
	PreserveNone AnalysisSet = 0
	PreserveAll  AnalysisSet = 1<<NumAnalyses - 1
)

// NewSet builds a set from individual analyses.
func NewSet(as ...Analysis) AnalysisSet {
	var s AnalysisSet
	for _, a := range as {
		s |= 1 << a
	}
	return s
}

// Has reports whether a is in the set.
func (s AnalysisSet) Has(a Analysis) bool { return s&(1<<a) != 0 }

// With returns the set with a added.
func (s AnalysisSet) With(a Analysis) AnalysisSet { return s | 1<<a }

// Without returns the set with a removed.
func (s AnalysisSet) Without(a Analysis) AnalysisSet { return s &^ (1 << a) }

// String renders the set for the -passes listing: "all", "none", or
// the member names joined by "+".
func (s AnalysisSet) String() string {
	switch s {
	case PreserveNone:
		return "none"
	case PreserveAll:
		return "all"
	}
	var names []string
	for a := Analysis(0); a < NumAnalyses; a++ {
		if s.Has(a) {
			names = append(names, a.String())
		}
	}
	return strings.Join(names, "+")
}
