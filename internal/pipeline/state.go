package pipeline

import (
	"context"

	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/obs"
)

// State is the blackboard the passes of one allocation run communicate
// through: the working function, the per-round analysis products, and
// the accumulated allocation outputs. One State serves all rounds of
// one (function, strategy, configuration) allocation; the runner resets
// the per-round fields between rounds.
type State struct {
	// Orig is the original (cached) function; it is never mutated.
	Orig *ir.Func
	// Fn is the working function: Orig until the first spill rewrite,
	// then a private clone rewritten in place each spilling round.
	Fn *ir.Func
	// FF supplies the execution-frequency weights.
	FF *freq.FuncFreq
	// Config is the register configuration being allocated for.
	Config machine.Config
	// Round is the current build→color→spill round (0-based).
	Round int
	// Tracer receives decision events; nil disables tracing.
	Tracer obs.Tracer
	// Ctx, when non-nil, carries the deadline/cancellation of the
	// request this allocation serves. The runner polls it between
	// passes and abandons the run with ctx.Err() once it is done; nil
	// (the default for in-process callers) costs one nil check per
	// pass.
	Ctx context.Context
	// AM owns the analysis artifacts and their validity.
	AM *AnalysisManager

	// Per-round products.

	// Live is the liveness of Fn this round (a private fork).
	Live *liveness.Info
	// Graphs holds the working (post-coalesce) interference graphs of
	// this round. Entries left nil by the pipeline (e.g. with the
	// coalesce pass dropped) are lazily filled with base snapshots by
	// WorkGraphs.
	Graphs [ir.NumClasses]*interference.Graph
	// SharedRound0 marks that this round's coalesced graphs are views
	// of the shared round-0 artifacts, so the live-range analysis may
	// come from the shared cache too.
	SharedRound0 bool
	// Ranges is the live-range analysis of this round.
	Ranges *liverange.Set
	// Colors is the coloring produced by the strategy this round.
	Colors []machine.PhysReg
	// SpillSet maps the registers the strategy spilled this round to
	// their assigned stack slots. Empty means the round converged.
	SpillSet map[ir.Reg]*ir.Symbol

	// Accumulated outputs.

	// SlotOf maps every register spilled in any round to its slot.
	SlotOf map[ir.Reg]*ir.Symbol
	// NoSpill marks the spill temporaries introduced by rewrites; they
	// must never be spill candidates themselves.
	NoSpill map[ir.Reg]bool
	// Escalated records that a tiered pipeline abandoned its cheap tier
	// for this function (the hybrid scan-first strategy sets it when the
	// scan spills and graph coloring takes over). It is per-allocation
	// state, deliberately not reset between rounds: once escalated, every
	// later round stays in the expensive tier.
	Escalated bool

	// Scratch is strategy-private working storage that survives across
	// rounds of one allocation (never shared between functions). A pass
	// that needs per-round scratch — the linear scan's segment arena,
	// for example — parks it here so spill rounds reuse the round-0
	// allocations. Passes must tolerate any value left by another pass
	// (type-assert, replace on mismatch).
	Scratch any

	// LiveHit and BaseHit report whether this round's liveness and
	// base graphs were served from an already-built shared cache (the
	// prep-cache tracing signal).
	LiveHit bool
	BaseHit bool

	cloned bool
}

// NewState prepares a run of cache.Fn under ff and config.
func NewState(cache *FuncCache, ff *freq.FuncFreq, config machine.Config, tr obs.Tracer) *State {
	return &State{
		Orig:    cache.Fn,
		Fn:      cache.Fn,
		FF:      ff,
		Config:  config,
		Tracer:  tr,
		AM:      NewAnalysisManager(cache),
		SlotOf:  make(map[ir.Reg]*ir.Symbol),
		NoSpill: make(map[ir.Reg]bool),
	}
}

// Traced reports whether decision events should be emitted.
func (s *State) Traced() bool { return s.Tracer != nil && s.Tracer.Enabled() }

// IsNoSpill is the no-spill predicate over accumulated spill
// temporaries, in the shape liverange.Analyze wants.
func (s *State) IsNoSpill(r ir.Reg) bool { return s.NoSpill[r] }

// CloneFn switches the working function to a private clone of the
// original, exactly once; later calls are no-ops (the clone is
// rewritten in place). Block IDs are preserved by Clone, so frequency
// tables for the original remain valid.
func (s *State) CloneFn() {
	if s.cloned {
		return
	}
	s.Fn = s.Orig.Clone()
	s.cloned = true
	s.AM.SetFunc(s.Fn)
}

// BeginRound resets the per-round products. The runner calls it before
// each pass sweep.
func (s *State) BeginRound(round int) {
	s.Round = round
	s.Graphs = [ir.NumClasses]*interference.Graph{}
	s.SharedRound0 = false
	s.SpillSet = nil
	s.LiveHit = false
	s.BaseHit = false
}

// Converged reports whether the last pass sweep ended without spills.
func (s *State) Converged() bool { return len(s.SpillSet) == 0 }

// WorkGraphs returns this round's working interference graphs, filling
// any entry no pass produced with a copy-on-write snapshot of the base
// graph — the degenerate "no coalescing" product. This keeps a
// pipeline with the coalesce pass dropped well-formed, and guarantees
// downstream passes never receive the base graph itself: nothing they
// do may reach the frozen artifact Reconstruct patches next round.
func (s *State) WorkGraphs() *[ir.NumClasses]*interference.Graph {
	for c := range s.Graphs {
		if s.Graphs[c] == nil {
			s.Graphs[c] = s.AM.Base(ir.Class(c)).Snapshot()
		}
	}
	return &s.Graphs
}
