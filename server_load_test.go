package callcost_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/randprog"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// fetchCacheCounters reads the result-cache counters from /metrics —
// the load gate measures the hit ratio exactly the way an operator
// would, through the exposition endpoint, not through test hooks.
func fetchCacheCounters(t *testing.T, base string) (hits, misses int64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", resp.StatusCode, raw)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	return snap.Counters["result_cache_hits_total"], snap.Counters["result_cache_misses_total"]
}

// TestServerLoadSaturation is the load gate of the daemon PR: a small
// worker pool behind a bounded queue, warmed once, then hammered by
// 1000 concurrent senders replaying the deterministic randprog corpus.
// Backpressure must shed with 429 — never with a 5xx — and the warm
// traffic that is admitted must be served almost entirely from the
// content-addressed cache (>90% hit ratio as observed via /metrics).
// Run under -race this is also the concurrency proof for the whole
// edge-pool-cache stack.
func TestServerLoadSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-sender load run; skipped in -short")
	}
	reg := telemetry.NewRegistry()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	// Two workers and a short queue against 1000 senders guarantees
	// saturation; no server timeout means a deadline can never turn a
	// slow drain into a 5xx.
	s := server.New(server.Options{Workers: 2, QueueSize: 16, Registry: reg})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	const (
		corpusSeed  = 5
		corpusSize  = 50
		repeats     = 40
		concurrency = 1000
	)
	corpus := randprog.Corpus(corpusSeed, corpusSize)

	// Warm phase: the whole corpus as one /batch call. A batch is a
	// single admission unit, so warming cannot be shed, and afterwards
	// every function of every corpus program is cache-resident.
	var batch bytes.Buffer
	batch.WriteByte('[')
	for i, body := range corpus {
		if i > 0 {
			batch.WriteByte(',')
		}
		batch.Write(body)
	}
	batch.WriteByte(']')
	resp, err := http.Post(ts.URL+"/batch", "application/json", &batch)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm batch: status %d: %s", resp.StatusCode, raw)
	}
	var items []server.BatchItem
	if err := json.Unmarshal(raw, &items); err != nil {
		t.Fatalf("warm batch: bad JSON: %v", err)
	}
	if len(items) != corpusSize {
		t.Fatalf("warm batch returned %d items, want %d", len(items), corpusSize)
	}
	for i, item := range items {
		if item.Status != http.StatusOK {
			t.Fatalf("warm batch item %d: status %d: %s", i, item.Status, item.Error)
		}
	}
	warmHits, warmMisses := fetchCacheCounters(t, ts.URL)

	// Load phase: the corpus replayed from 1000 concurrent senders.
	load := make([][]byte, 0, corpusSize*repeats)
	for r := 0; r < repeats; r++ {
		load = append(load, corpus...)
	}
	stats, err := server.RunLoad(ts.URL, load, concurrency, 0)
	if err != nil {
		t.Fatalf("load run failed: %v (stats: %v)", err, stats)
	}
	t.Logf("load: %v", stats)

	if stats.Requests != len(load) {
		t.Errorf("sent %d requests, want %d", stats.Requests, len(load))
	}
	if stats.Shed == 0 {
		t.Error("no 429s: the bounded queue never saturated under 1000 senders")
	}
	if stats.OK == 0 {
		t.Error("no request was admitted at all")
	}
	if len(stats.Other) > 0 {
		t.Errorf("non-200/429 responses under load: %v", stats.Other)
	}

	hits, misses := fetchCacheCounters(t, ts.URL)
	dh, dm := hits-warmHits, misses-warmMisses
	if dh+dm == 0 {
		t.Fatal("load phase touched the cache zero times")
	}
	ratio := float64(dh) / float64(dh+dm)
	t.Logf("warm-cache: %d hits, %d misses (%.1f%% hit ratio)", dh, dm, 100*ratio)
	if ratio <= 0.9 {
		t.Errorf("warm-cache hit ratio %.1f%% <= 90%%", 100*ratio)
	}
}
