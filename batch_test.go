package callcost_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/randprog"
	"repro/internal/telemetry"
)

// batchStrategies are the strategies the batch differential gate runs:
// the headline graph-coloring allocator plus both linear-scan tiers,
// covering every pipeline family the driver can schedule.
func batchStrategies() map[string]callcost.Strategy {
	return map[string]callcost.Strategy{
		"improved": callcost.ImprovedAll(),
		"linscan":  callcost.LinearScan(),
		"hybrid":   callcost.HybridTiered(),
	}
}

// TestBatchInterprocOffByteIdentical is the differential gate of the
// batch driver: with interprocedural costs disabled, the call-graph
// scheduled AllocateProgramBatch must be byte-identical — colors, spill
// slots, rounds, callee-save usage, assembly, overhead — to the plain
// AllocateWithOptions path, for every benchmark program and strategy.
// Run under -race this also proves the DAG tasks share no mutable
// state.
func TestBatchInterprocOffByteIdentical(t *testing.T) {
	config := callcost.NewConfig(8, 6, 4, 4)
	for _, bp := range benchprog.All() {
		prog := callcost.MustCompile(bp.Source)
		pf := prog.StaticFreq()
		for name, strat := range batchStrategies() {
			tag := fmt.Sprintf("%s/%s", bp.Name, name)
			want, err := prog.AllocateWithOptions(strat, config, pf, callcost.DefaultAllocOptions())
			if err != nil {
				t.Fatalf("%s: reference: %v", tag, err)
			}
			got, bs, err := prog.AllocateProgramBatch(strat, config, pf,
				callcost.DefaultAllocOptions(), callcost.BatchOptions{Workers: 4})
			if err != nil {
				t.Fatalf("%s: batch: %v", tag, err)
			}
			comparePlans(t, tag, want, got)
			if wo, go_ := want.Overhead(pf).Total(), got.Overhead(pf).Total(); wo != go_ {
				t.Fatalf("%s: overhead diverges: %v vs %v", tag, wo, go_)
			}
			if bs.SummaryHits != 0 {
				t.Fatalf("%s: interproc off but %d summary hits", tag, bs.SummaryHits)
			}
			if bs.SCCs == 0 || bs.Waves == 0 {
				t.Fatalf("%s: degenerate schedule stats %+v", tag, bs)
			}
		}
	}
}

// TestBatchInterprocScheduleIndependent asserts the determinism
// contract with interprocedural costs ON: the output depends only on
// the call-graph order, not the worker schedule — 1 worker and 8
// workers must produce identical allocations, cold and warm.
func TestBatchInterprocScheduleIndependent(t *testing.T) {
	config := callcost.NewConfig(8, 6, 4, 4)
	opts := randprog.DefaultOptions()
	for seed := int64(0); seed < 6; seed++ {
		src := randprog.Generate(seed, opts)
		prog := callcost.MustCompile(src)
		pf := prog.StaticFreq()
		for name, strat := range batchStrategies() {
			tag := fmt.Sprintf("seed %d %s", seed, name)
			seq, _, err := prog.AllocateProgramBatch(strat, config, pf,
				callcost.DefaultAllocOptions(), callcost.BatchOptions{Interproc: true, Workers: 1})
			if err != nil {
				t.Fatalf("%s: sequential: %v", tag, err)
			}
			par, _, err := prog.AllocateProgramBatch(strat, config, pf,
				callcost.DefaultAllocOptions(), callcost.BatchOptions{Interproc: true, Workers: 8})
			if err != nil {
				t.Fatalf("%s: parallel: %v", tag, err)
			}
			comparePlans(t, tag, seq, par)
			again, _, err := prog.AllocateProgramBatch(strat, config, pf,
				callcost.DefaultAllocOptions(), callcost.BatchOptions{Interproc: true, Workers: 8})
			if err != nil {
				t.Fatalf("%s: warm rerun: %v", tag, err)
			}
			comparePlans(t, tag+" warm", par, again)
		}
	}
}

// TestBatchInterprocExecutes runs every interprocedurally allocated
// benchmark on the machine-level interpreter and checks the computed
// result against the reference interpreter: pruned caller-save sets
// must never drop a register the callee actually writes.
func TestBatchInterprocExecutes(t *testing.T) {
	config := callcost.NewConfig(8, 6, 4, 4)
	improvedTotal, staticTotal := 0.0, 0.0
	improvedCount := 0
	for _, bp := range benchprog.All() {
		prog := callcost.MustCompile(bp.Source)
		pf, ref, err := prog.Profile()
		if err != nil {
			t.Fatalf("%s: profile: %v", bp.Name, err)
		}
		base, err := prog.AllocateWithOptions(callcost.ImprovedAll(), config, pf, callcost.DefaultAllocOptions())
		if err != nil {
			t.Fatalf("%s: static allocation: %v", bp.Name, err)
		}
		inter, bs, err := prog.AllocateProgramBatch(callcost.ImprovedAll(), config, pf,
			callcost.DefaultAllocOptions(), callcost.BatchOptions{Interproc: true, Workers: 4})
		if err != nil {
			t.Fatalf("%s: interproc allocation: %v", bp.Name, err)
		}
		res, err := inter.Execute()
		if err != nil {
			t.Fatalf("%s: execute interproc allocation: %v", bp.Name, err)
		}
		if res.RetInt != ref.RetInt {
			t.Fatalf("%s: interproc result %d, reference %d", bp.Name, res.RetInt, ref.RetInt)
		}
		baseOv, _, err := base.MeasuredOverhead()
		if err != nil {
			t.Fatalf("%s: measure static: %v", bp.Name, err)
		}
		interOv, _, err := inter.MeasuredOverhead()
		if err != nil {
			t.Fatalf("%s: measure interproc: %v", bp.Name, err)
		}
		staticTotal += baseOv.Total()
		improvedTotal += interOv.Total()
		if interOv.Total() > baseOv.Total() {
			t.Errorf("%s: interproc overhead %.0f exceeds static %.0f", bp.Name, interOv.Total(), baseOv.Total())
		}
		if interOv.Total() < baseOv.Total() {
			improvedCount++
		}
		if bs.SummaryHits == 0 && bs.SummaryMisses > 0 && bs.SCCs > 1 {
			t.Errorf("%s: multi-component program consumed no summaries (%+v)", bp.Name, bs)
		}
	}
	// The acceptance bar: interprocedural costs must strictly reduce
	// measured overhead on at least 3 of the benchmark programs.
	if improvedCount < 3 {
		t.Errorf("interproc reduced measured overhead on %d programs, want >= 3", improvedCount)
	}
	if improvedTotal > staticTotal {
		t.Errorf("interproc total %.0f exceeds static total %.0f", improvedTotal, staticTotal)
	}
}

// TestBatchTelemetry asserts the driver feeds the batch instruments:
// wave totals, the DAG ready-peak gauge, and interprocedural summary
// hits all become visible in the registry snapshot.
func TestBatchTelemetry(t *testing.T) {
	b := telemetry.Enable(nil)
	defer telemetry.Disable()
	prog := callcost.MustCompile(benchprog.ByName("li").Source)
	pf := prog.StaticFreq()
	_, bs, err := prog.AllocateProgramBatch(callcost.ImprovedAll(), callcost.NewConfig(8, 6, 4, 4), pf,
		callcost.DefaultAllocOptions(), callcost.BatchOptions{Interproc: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := b.Reg.Snapshot()
	if got := snap.Counters["batch_waves_total"]; got != int64(bs.Waves) {
		t.Errorf("batch_waves_total = %d, want %d", got, bs.Waves)
	}
	if got := snap.Gauges["batch_dag_ready_peak"]; got != int64(bs.ReadyPeak) {
		t.Errorf("batch_dag_ready_peak = %d, want %d", got, bs.ReadyPeak)
	}
	if got := snap.Counters["interproc_summary_hits_total"]; got != int64(bs.SummaryHits) {
		t.Errorf("interproc_summary_hits_total = %d, want %d", got, bs.SummaryHits)
	}
	if bs.SummaryHits == 0 {
		t.Errorf("li consumed no summaries: %+v", bs)
	}
}
