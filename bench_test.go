// Benchmarks that regenerate every table and figure of the paper (run
// with `go test -bench=. -benchmem`), plus micro-benchmarks of the
// pipeline phases. The per-figure benchmarks report the headline
// quantity of the corresponding experiment as a custom metric so a
// bench run doubles as a results summary:
//
//	BenchmarkFigure7   ... base/improved@full(ear)
//	BenchmarkTable4    ... min and max speedup percent
package callcost_test

import (
	"io"
	"testing"
	"time"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/cfg"
	"repro/internal/experiments"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/obs"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// benchEnv caches compiled and profiled benchmarks across benchmarks.
var benchEnv = experiments.NewEnv()

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("no experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchEnv, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the base-allocator cost decomposition of
// eqntott and ear across the register sweep.
func BenchmarkFigure2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure6 regenerates the SC / SC+PR / SC+BS / SC+BS+PR
// improvement ratios for the class-representative programs.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates the improved-allocator decomposition and
// reports the paper's headline ratio (base/improved at the full machine
// for ear; the paper reports 45x).
func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, "fig7")
	base, err := experiments.CostDecomposition(benchEnv, "ear", callcost.Chaitin())
	if err != nil {
		b.Fatal(err)
	}
	impr, err := experiments.CostDecomposition(benchEnv, "ear", callcost.ImprovedAll())
	if err != nil {
		b.Fatal(err)
	}
	last := len(base) - 1
	b.ReportMetric(callcost.Ratio(base[last].Cost.Total(), impr[last].Cost.Total()), "base/improved@full(ear)")
}

// BenchmarkTable2 regenerates optimistic-vs-base with static estimates.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTable3 regenerates optimistic-vs-base with profiles.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkFigure9 regenerates the fpppp static comparison.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates priority-based vs improved Chaitin.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates improved Chaitin vs CBH.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable4 regenerates the execution-time speedups and reports
// their range.
func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "tab4")
	rows, err := experiments.Speedups(benchEnv, experiments.Tab4Programs)
	if err != nil {
		b.Fatal(err)
	}
	minS, maxS := rows[0].SpeedupPercent, rows[0].SpeedupPercent
	for _, r := range rows {
		if r.SpeedupPercent < minS {
			minS = r.SpeedupPercent
		}
		if r.SpeedupPercent > maxS {
			maxS = r.SpeedupPercent
		}
	}
	b.ReportMetric(minS, "min-speedup-%")
	b.ReportMetric(maxS, "max-speedup-%")
}

// BenchmarkAblationCalleeModel regenerates the §4 first-use vs shared
// comparison.
func BenchmarkAblationCalleeModel(b *testing.B) { runExperiment(b, "ablation-callee") }

// BenchmarkAblationSimplifyKey regenerates the §5 key comparison.
func BenchmarkAblationSimplifyKey(b *testing.B) { runExperiment(b, "ablation-key") }

// BenchmarkAblationPriorityOrdering regenerates the §9.1 ordering
// comparison.
func BenchmarkAblationPriorityOrdering(b *testing.B) { runExperiment(b, "ablation-priority") }

// BenchmarkAblationCoalescing regenerates the coalescing-mode ablation.
func BenchmarkAblationCoalescing(b *testing.B) { runExperiment(b, "ablation-coalesce") }

// BenchmarkAblationSpillHeuristic regenerates the spill-heuristic
// ablation.
func BenchmarkAblationSpillHeuristic(b *testing.B) { runExperiment(b, "ablation-spillheur") }

// ---------------------------------------------------------------------
// Pipeline micro-benchmarks

// BenchmarkCompileSuite measures the front end over the whole suite.
func BenchmarkCompileSuite(b *testing.B) {
	progs := benchprog.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := callcost.Compile(p.Source); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLiveness measures the dataflow solver on the suite's largest
// functions.
func BenchmarkLiveness(b *testing.B) {
	prog := callcost.MustCompile(benchprog.ByName("tomcatv").Source)
	fn := prog.IR.FuncByName["main"]
	g := cfg.New(fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		liveness.Compute(fn, g)
	}
}

// benchGraphSetup compiles the largest benchprog function (fpppp's
// twoel) and returns everything the per-phase micro-benchmarks need.
func benchGraphSetup(b *testing.B) (*ir.Func, *liveness.Info) {
	b.Helper()
	prog := callcost.MustCompile(benchprog.ByName("fpppp").Source)
	fn := prog.IR.FuncByName["twoel"]
	g := cfg.New(fn)
	return fn, liveness.Compute(fn, g)
}

// BenchmarkInterferenceBuild measures graph construction.
func BenchmarkInterferenceBuild(b *testing.B) {
	fn, live := benchGraphSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interference.Build(fn, live, ir.ClassFloat)
	}
}

// BenchmarkCoalesce measures the coalescing phase as the driver runs
// it: clone the base graph, then coalesce the clone aggressively.
func BenchmarkCoalesce(b *testing.B) {
	fn, live := benchGraphSetup(b)
	base := interference.Build(fn, live, ir.ClassFloat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := base.Clone()
		g.Coalesce(false, 16)
	}
}

// BenchmarkSimplify measures worklist simplification over the coalesced
// graph of the largest benchprog function, at a register count low
// enough that the blocked-spill path is exercised too.
func BenchmarkSimplify(b *testing.B) {
	p, err := benchEnv.Get("fpppp")
	if err != nil {
		b.Fatal(err)
	}
	fn := p.Program.IR.FuncByName["twoel"]
	g := cfg.New(fn)
	live := liveness.Compute(fn, g)
	cfgRegs := callcost.NewConfig(8, 6, 2, 2)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(fn, live, c)
		graphs[c].Coalesce(false, cfgRegs.Total(c))
	}
	ranges := liverange.Analyze(fn, live, &graphs, p.Dynamic.ByFunc["twoel"], nil)
	ctx := &regalloc.ClassContext{
		Fn:     fn,
		Class:  ir.ClassFloat,
		Graph:  graphs[ir.ClassFloat],
		Ranges: ranges,
		Config: cfgRegs,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := regalloc.NewSimplifier(ctx)
		s.Run(regalloc.SimplifyOptions{})
	}
}

// BenchmarkRanges measures live-range analysis (costs, degrees, areas)
// over the coalesced graphs of the largest benchprog function — the
// phase the prepared-function cache shares across strategy cells.
func BenchmarkRanges(b *testing.B) {
	p, err := benchEnv.Get("fpppp")
	if err != nil {
		b.Fatal(err)
	}
	fn := p.Program.IR.FuncByName["twoel"]
	live := liveness.Compute(fn, cfg.New(fn))
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(fn, live, c)
		graphs[c].Coalesce(false, 0)
	}
	ff := p.Dynamic.ByFunc["twoel"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		liverange.Analyze(fn, live, &graphs, ff, nil)
	}
}

// BenchmarkAllocateBase measures a whole-program base allocation.
func BenchmarkAllocateBase(b *testing.B) {
	benchAllocate(b, callcost.Chaitin())
}

// BenchmarkAllocateImproved measures a whole-program improved
// allocation (the paper's contribution, all three techniques).
func BenchmarkAllocateImproved(b *testing.B) {
	benchAllocate(b, callcost.ImprovedAll())
}

func benchAllocate(b *testing.B, strat callcost.Strategy) {
	b.Helper()
	p, err := benchEnv.Get("li")
	if err != nil {
		b.Fatal(err)
	}
	cfgRegs := callcost.NewConfig(8, 6, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Program.Allocate(strat, cfgRegs, p.Dynamic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateProgram measures repeated whole-program allocations
// of the same compiled program — the shape of a figure sweep — with the
// shared prepared-function cache on (the default) and off. The gap
// between the two sub-benchmarks is what round-0 sharing buys.
func BenchmarkAllocateProgram(b *testing.B) {
	p, err := benchEnv.Get("li")
	if err != nil {
		b.Fatal(err)
	}
	cfgRegs := callcost.NewConfig(8, 6, 4, 4)
	for _, mode := range []struct {
		name   string
		noPrep bool
	}{
		{"prep-cache", false},
		{"no-prep-cache", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := callcost.DefaultAllocOptions()
			opts.NoPrepCache = mode.noPrep
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Program.AllocateWithOptions(callcost.ImprovedAll(), cfgRegs, p.Dynamic, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateStrategy measures cold whole-program allocation
// wall time per strategy: the full graph-coloring pipeline (improved),
// the graph-free linear scan, and the scan-first hybrid tier. The
// prepared-function cache is off so every iteration pays exactly the
// analyses its strategy needs — the scan's win is precisely not
// building interference graphs.
//
// Each cell also reports the pareto-sweep quality metrics as custom
// units: the analytic total overhead under dynamic weights
// ("overhead") and, for the hybrid, how many functions escalated to
// full coloring ("escalated"). Both are deterministic, so
// cmd/benchdiff gates them tightly against the baseline's pareto
// section — a quality regression fails CI like a wall-time one.
func BenchmarkAllocateStrategy(b *testing.B) {
	// li and eqntott escalate under the hybrid tier (their hot function
	// spills); ear and sc are spill-light and stay entirely in the scan.
	progs := []string{"li", "compress", "eqntott", "ear", "sc"}
	strategies := []struct {
		name  string
		strat callcost.Strategy
	}{
		{"improved", callcost.ImprovedAll()},
		{"linscan", callcost.LinearScan()},
		{"hybrid", callcost.HybridTiered()},
	}
	cfgRegs := callcost.NewConfig(8, 6, 4, 4)
	for _, pname := range progs {
		p, err := benchEnv.Get(pname)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range strategies {
			b.Run(pname+"/"+s.name, func(b *testing.B) {
				opts := callcost.DefaultAllocOptions()
				opts.NoPrepCache = true
				var alloc *callcost.Allocation
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if alloc, err = p.Program.AllocateWithOptions(s.strat, cfgRegs, p.Dynamic, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(alloc.Overhead(p.Dynamic).Total(), "overhead")
				if s.name == "hybrid" {
					escalated := 0
					for _, plan := range alloc.Plans {
						if plan.Alloc.Escalated {
							escalated++
						}
					}
					b.ReportMetric(float64(escalated), "escalated")
				}
			})
		}
	}
}

// BenchmarkMachineInterp measures executing allocated code on the
// machine-level interpreter.
func BenchmarkMachineInterp(b *testing.B) {
	p, err := benchEnv.Get("compress")
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := p.Program.Allocate(callcost.ImprovedAll(), callcost.NewConfig(8, 6, 4, 4), p.Dynamic)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceInterp measures the reference interpreter on the
// same workload, for comparison with BenchmarkMachineInterp.
func BenchmarkReferenceInterp(b *testing.B) {
	p, err := benchEnv.Get("compress")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Program.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstruction measures the driver with the paper's
// graph-reconstruction phase (patching the interference graph after
// spill insertion) against BenchmarkFullRebuild — the compile-time
// claim of the framework. Both produce identical allocations (verified
// by the test suite).
func BenchmarkReconstruction(b *testing.B) { benchDriver(b, false) }

// BenchmarkFullRebuild is the rebuild-from-scratch baseline for
// BenchmarkReconstruction.
func BenchmarkFullRebuild(b *testing.B) { benchDriver(b, true) }

// roundTimer is a tracer that accumulates the wall time of every
// pipeline phase of rounds ≥ 1 — the spill rounds, where the
// incremental dataflow machinery operates.
type roundTimer struct{ total time.Duration }

func (rt *roundTimer) Enabled() bool { return true }
func (rt *roundTimer) Emit(ev obs.Event) {
	if ev.Kind == obs.KindPhaseEnd && ev.Round >= 1 {
		rt.total += ev.Dur
	}
}

// BenchmarkSpillRound measures the spill rounds (round ≥ 1) of
// multi-round allocations under three dataflow regimes: the default
// incremental path (liveness.Rebase from the rewritten blocks, block
// map column updates, interference reconstruction), the same pipeline
// with only the liveness/block-map update ablated to a full re-solve,
// and the all-from-scratch Options.Rebuild baseline. The reported
// round1+_us/op metric is the per-allocation wall time of rounds ≥ 1;
// the ns/op column is the whole allocation. All three regimes produce
// byte-identical allocations (pinned by TestIncrementalMatchesRebuild
// and TestPipelineMatchesLegacy).
func BenchmarkSpillRound(b *testing.B) {
	cases := []struct{ prog, fn string }{
		{"fpppp", "twoel"},
		{"tomcatv", "main"},
		{"eqntott", "buildtt"},
	}
	modes := []struct {
		name string
		opts func(regalloc.Options) regalloc.Options
	}{
		{"update", func(o regalloc.Options) regalloc.Options { return o }},
		{"full-liveness", func(o regalloc.Options) regalloc.Options {
			pl := regalloc.BuildPipeline(callcost.Chaitin(), rewrite.InsertSpills, o).
				Replace(obs.PhaseLiveness, regalloc.LivenessPass(true))
			o.Pipeline = &pl
			return o
		}},
		{"rebuild", func(o regalloc.Options) regalloc.Options { o.Rebuild = true; return o }},
	}
	cfgRegs := callcost.NewConfig(6, 4, 0, 0)
	for _, c := range cases {
		p, err := benchEnv.Get(c.prog)
		if err != nil {
			b.Fatal(err)
		}
		fn := p.Program.IR.FuncByName[c.fn]
		ff := p.Dynamic.ByFunc[c.fn]
		for _, m := range modes {
			b.Run(c.prog+"_"+c.fn+"/"+m.name, func(b *testing.B) {
				tr := &roundTimer{}
				opts := regalloc.DefaultOptions()
				opts.Tracer = tr
				opts = m.opts(opts)
				b.ResetTimer()
				tr.total = 0
				for i := 0; i < b.N; i++ {
					if _, err := regalloc.AllocateFunc(fn, ff, cfgRegs, callcost.Chaitin(),
						rewrite.InsertSpills, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(tr.total.Nanoseconds())/1e3/float64(b.N), "round1+_us/op")
			})
		}
	}
}

func benchDriver(b *testing.B, rebuild bool) {
	b.Helper()
	// fpppp at the minimum configuration spills across several rounds —
	// the case where reconstruction pays.
	p, err := benchEnv.Get("fpppp")
	if err != nil {
		b.Fatal(err)
	}
	fn := p.Program.IR.FuncByName["twoel"]
	ff := p.Dynamic.ByFunc["twoel"]
	opts := regalloc.DefaultOptions()
	opts.Rebuild = rebuild
	cfgRegs := callcost.NewConfig(6, 4, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regalloc.AllocateFunc(fn, ff, cfgRegs, callcost.Chaitin(),
			rewrite.InsertSpills, opts); err != nil {
			b.Fatal(err)
		}
	}
}
