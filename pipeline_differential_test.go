package callcost_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/freq"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// legacyAllocate builds a whole-program allocation through
// regalloc.AllocateLegacy — the pre-pipeline driver kept as the
// differential reference — with a fresh per-function prepare (the old
// cold path).
func legacyAllocate(t *testing.T, prog *callcost.Program, strat callcost.Strategy,
	config callcost.Config, pf *freq.ProgramFreq) *callcost.Allocation {
	t.Helper()
	a := &callcost.Allocation{
		Program:  prog,
		Config:   config,
		Strategy: strat.Name(),
		Plans:    make(map[string]*rewrite.FuncPlan, len(prog.IR.Funcs)),
	}
	opts := callcost.DefaultAllocOptions()
	for _, fn := range prog.IR.Funcs {
		fa, err := regalloc.AllocateLegacy(regalloc.Prepare(fn), pf.ByFunc[fn.Name],
			config, strat, rewrite.InsertSpills, opts)
		if err != nil {
			t.Fatalf("legacy %s on %s: %v", strat.Name(), fn.Name, err)
		}
		if err := rewrite.Validate(fa); err != nil {
			t.Fatalf("legacy %s on %s: invalid allocation: %v", strat.Name(), fn.Name, err)
		}
		a.Plans[fn.Name] = rewrite.BuildPlan(fa)
	}
	return a
}

// TestPipelineMatchesLegacy is the refactor's acceptance gate: the
// pass-pipeline driver must be byte-identical — colors, spill slots,
// round counts, callee-save usage, assembly — to the retired monolithic
// driver, for every benchmark program, all four strategy families, a
// spilling and a non-spilling configuration, with the prep cache cold
// and warm, sequentially and in parallel. Run under -race this also
// proves pipeline state never leaks across concurrent allocations.
func TestPipelineMatchesLegacy(t *testing.T) {
	configs := []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0), // minimum: forces spill rounds
		callcost.NewConfig(8, 6, 4, 4), // default machine
	}
	strategies := []callcost.Strategy{
		callcost.Chaitin(),
		callcost.ImprovedAll(),
		callcost.Priority(callcost.PrioritySorting),
		callcost.CBH(),
	}
	for _, name := range benchprog.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src := benchprog.ByName(name).Source
			// Separate compiles so the legacy reference and the pipeline
			// runs never share IR or caches.
			legacyProg, err := callcost.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			pipeProg, err := callcost.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			pfLegacy := legacyProg.StaticFreq()
			pfPipe := pipeProg.StaticFreq()
			for _, strat := range strategies {
				for _, config := range configs {
					tag := fmt.Sprintf("%s %s at %s", name, strat.Name(), config)
					want := legacyAllocate(t, legacyProg, strat, config, pfLegacy)

					cold := callcost.DefaultAllocOptions()
					cold.NoPrepCache = true
					cold.Parallel = 1
					got, err := pipeProg.AllocateWithOptions(strat, config, pfPipe, cold)
					if err != nil {
						t.Fatalf("%s (cold): %v", tag, err)
					}
					comparePlans(t, tag+" cold", want, got)

					warm := callcost.DefaultAllocOptions()
					warm.Parallel = 1
					// First cached run may populate the prep cache, the
					// second consumes it warm; both must match.
					for _, phase := range []string{"first-cached", "warm"} {
						got, err := pipeProg.AllocateWithOptions(strat, config, pfPipe, warm)
						if err != nil {
							t.Fatalf("%s (%s): %v", tag, phase, err)
						}
						comparePlans(t, tag+" "+phase, want, got)
					}

					par := callcost.DefaultAllocOptions()
					par.Parallel = 8
					got, err = pipeProg.AllocateWithOptions(strat, config, pfPipe, par)
					if err != nil {
						t.Fatalf("%s (parallel): %v", tag, err)
					}
					comparePlans(t, tag+" parallel", want, got)
				}
			}
		})
	}
}

// BenchmarkDriverOverhead isolates the pass-pipeline runner's overhead
// from allocation work: the same warm per-function allocations of li,
// through the legacy monolithic driver and through the pipeline.
func BenchmarkDriverOverhead(b *testing.B) {
	prog, err := callcost.Compile(benchprog.ByName("li").Source)
	if err != nil {
		b.Fatal(err)
	}
	pf := prog.StaticFreq()
	config := callcost.NewConfig(8, 6, 4, 4)
	strat := callcost.ImprovedAll()
	opts := callcost.DefaultAllocOptions()
	preps := make([]*pipeline.FuncCache, len(prog.IR.Funcs))
	for i, fn := range prog.IR.Funcs {
		preps[i] = regalloc.Prepare(fn)
	}
	run := func(b *testing.B, alloc func(*pipeline.FuncCache, *freq.FuncFreq) error) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, fn := range prog.IR.Funcs {
				if err := alloc(preps[j], pf.ByFunc[fn.Name]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("legacy", func(b *testing.B) {
		run(b, func(p *pipeline.FuncCache, ff *freq.FuncFreq) error {
			_, err := regalloc.AllocateLegacy(p, ff, config, strat, rewrite.InsertSpills, opts)
			return err
		})
	})
	b.Run("pipeline", func(b *testing.B) {
		run(b, func(p *pipeline.FuncCache, ff *freq.FuncFreq) error {
			_, err := regalloc.AllocatePrepared(p, ff, config, strat, rewrite.InsertSpills, opts)
			return err
		})
	})
}

// TestIncrementalMatchesRebuild is the spill-round dataflow ablation
// gate: the default pipeline — incremental liveness (Rebase from the
// rewritten blocks through a retargeted CFG), incremental interference
// reconstruction, and the incremental live-range block map — must be
// byte-identical to the same pipeline with Options.Rebuild, which
// recomputes every analysis from scratch each round.
func TestIncrementalMatchesRebuild(t *testing.T) {
	configs := []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0), // minimum: forces spill rounds
		callcost.NewConfig(8, 6, 4, 4),
	}
	strategies := []callcost.Strategy{
		callcost.Chaitin(),
		callcost.ImprovedAll(),
		callcost.Priority(callcost.PrioritySorting),
		callcost.CBH(),
	}
	for _, name := range benchprog.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src := benchprog.ByName(name).Source
			fullProg, err := callcost.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			incProg, err := callcost.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			pfFull := fullProg.StaticFreq()
			pfInc := incProg.StaticFreq()
			for _, strat := range strategies {
				for _, config := range configs {
					tag := fmt.Sprintf("%s %s at %s", name, strat.Name(), config)

					full := callcost.DefaultAllocOptions()
					full.Rebuild = true
					full.Parallel = 1
					want, err := fullProg.AllocateWithOptions(strat, config, pfFull, full)
					if err != nil {
						t.Fatalf("%s (rebuild): %v", tag, err)
					}

					inc := callcost.DefaultAllocOptions()
					inc.Parallel = 1
					got, err := incProg.AllocateWithOptions(strat, config, pfInc, inc)
					if err != nil {
						t.Fatalf("%s (incremental): %v", tag, err)
					}
					comparePlans(t, tag+" rebuild-vs-incremental", want, got)
				}
			}
		})
	}
}
