package callcost_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro"
	"repro/internal/ir"
	"repro/internal/randprog"
)

// slotNameMap projects a spill-slot map to its stable content (slot
// symbols are freshly allocated pointers every run).
func slotNameMap(slots map[ir.Reg]*ir.Symbol) map[ir.Reg]string {
	out := make(map[ir.Reg]string, len(slots))
	for r, s := range slots {
		out[r] = s.Name
	}
	return out
}

// comparePlans asserts two whole-program allocations agree on every
// observable output: colors, spill slots, round counts, callee-save
// usage, and the emitted assembly text.
func comparePlans(t *testing.T, tag string, want, got *callcost.Allocation) {
	t.Helper()
	if len(want.Plans) != len(got.Plans) {
		t.Fatalf("%s: plan counts differ: %d vs %d", tag, len(want.Plans), len(got.Plans))
	}
	for name, pw := range want.Plans {
		pg := got.Plans[name]
		if pg == nil {
			t.Fatalf("%s: %s missing from parallel run", tag, name)
		}
		if !reflect.DeepEqual(pw.Alloc.Colors, pg.Alloc.Colors) {
			t.Fatalf("%s: %s colors diverge between sequential and parallel", tag, name)
		}
		if !reflect.DeepEqual(slotNameMap(pw.Alloc.SlotOf), slotNameMap(pg.Alloc.SlotOf)) {
			t.Fatalf("%s: %s spill slots diverge", tag, name)
		}
		if pw.Alloc.Rounds != pg.Alloc.Rounds {
			t.Fatalf("%s: %s rounds %d vs %d", tag, name, pw.Alloc.Rounds, pg.Alloc.Rounds)
		}
		if !reflect.DeepEqual(pw.CalleeUsed, pg.CalleeUsed) {
			t.Fatalf("%s: %s callee-save usage diverges", tag, name)
		}
	}
	if wa, ga := want.Assembly(), got.Assembly(); wa != ga {
		t.Fatalf("%s: assembly output diverges between sequential and parallel", tag)
	}
}

// TestParallelAllocationMatchesSequential is the determinism contract
// of per-function parallel allocation: across the fuzz corpus, a
// parallel Allocate (worker pool, shared prep cache) must be
// byte-identical — colors, spill slots, rounds, assembly — to the
// sequential path with the prep cache disabled. Run under -race this
// also proves the shared prepared artifacts are never written.
func TestParallelAllocationMatchesSequential(t *testing.T) {
	configs := []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0),
		callcost.NewConfig(8, 6, 4, 4),
	}
	strategies := []callcost.Strategy{callcost.Chaitin(), callcost.ImprovedAll()}
	for seed := int64(0); seed < 10; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		seqProg, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parProg, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pfSeq := seqProg.StaticFreq()
		pfPar := parProg.StaticFreq()
		for _, strat := range strategies {
			for _, config := range configs {
				tag := fmt.Sprintf("seed %d %s at %s", seed, strat.Name(), config)
				seqOpts := callcost.DefaultAllocOptions()
				seqOpts.Parallel = 1
				seqOpts.NoPrepCache = true
				want, err := seqProg.AllocateWithOptions(strat, config, pfSeq, seqOpts)
				if err != nil {
					t.Fatalf("%s: sequential: %v", tag, err)
				}

				parOpts := callcost.DefaultAllocOptions()
				parOpts.Parallel = 8
				got, err := parProg.AllocateWithOptions(strat, config, pfPar, parOpts)
				if err != nil {
					t.Fatalf("%s: parallel: %v", tag, err)
				}
				comparePlans(t, tag, want, got)

				// Rerun on the warm prep cache: byte-identical again.
				again, err := parProg.AllocateWithOptions(strat, config, pfPar, parOpts)
				if err != nil {
					t.Fatalf("%s: warm rerun: %v", tag, err)
				}
				comparePlans(t, tag+" warm", got, again)
			}
		}
	}
}
