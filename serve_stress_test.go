package callcost_test

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/telemetry"
)

// TestServeHandlersConcurrentWithAllocations hammers the live
// introspection endpoints while allocations mutate the registry and
// the span recorder they expose. Under -race this is the proof that
// Snapshot/WriteJSON observe the atomics and the span ring without
// tearing; functionally, every response must be 200 with well-formed
// JSON — a half-updated histogram or a torn span list would surface as
// a decode error here.
func TestServeHandlersConcurrentWithAllocations(t *testing.T) {
	telemetry.Enable(nil)
	defer telemetry.Disable()
	spans := telemetry.NewSpanRecorder(0)

	srv, err := telemetry.Serve("127.0.0.1:0", nil, spans)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	done := make(chan struct{})
	var requests atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for g := 0; g < 4; g++ {
		for _, url := range []string{base + "/metrics", base + "/spans"} {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					resp, err := client.Get(url)
					if err != nil {
						t.Errorf("GET %s: %v", url, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Errorf("read %s: %v", url, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
						return
					}
					if !json.Valid(body) {
						t.Errorf("GET %s: response is not well-formed JSON: %.200s", url, body)
						return
					}
					requests.Add(1)
				}
			}(url)
		}
	}

	// The allocation load: every benchprog, traced in parallel, feeding
	// the registry and the span recorder the readers are snapshotting.
	for _, p := range benchprog.All() {
		prog, err := callcost.Compile(p.Source)
		if err != nil {
			t.Fatal(err)
		}
		opts := callcost.WithTracer(callcost.DefaultAllocOptions(), spans)
		opts.Parallel = 8
		opts.TraceParallel = true
		if _, err := prog.AllocateWithOptions(callcost.ImprovedAll(),
			callcost.NewConfig(6, 4, 0, 0), prog.StaticFreq(), opts); err != nil {
			t.Fatal(err)
		}
		spans.Flush()
	}
	close(done)
	wg.Wait()
	if n := requests.Load(); n == 0 {
		t.Fatal("no introspection requests completed during the allocation load")
	}
}
