package callcost_test

import (
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/callgraph"
	"repro/internal/randprog"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// batchBenchProgram compiles one benchmark input for the batch driver:
// a named benchprog, or the synthetic wide call DAG ("calldag") — a
// randprog ShapeCallDAG instance with a large independent chain layer,
// the shape whose schedule actually exposes parallelism.
func batchBenchProgram(b *testing.B, name string) (*callcost.Program, *callcost.Allocation) {
	b.Helper()
	var prog *callcost.Program
	if name == "calldag" {
		src := randprog.Generate(7, randprog.Options{
			Funcs: 24, MaxStmts: 5, MaxDepth: 2, MaxLoopTrip: 4,
			Shape: randprog.ShapeCallDAG,
		})
		p, err := callcost.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		prog = p
	} else {
		p, err := benchEnv.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		prog = p.Program
	}
	return prog, nil
}

// simulateMakespan runs list scheduling (longest-task-first among the
// ready set) of the component durations over the dependency DAG on the
// given number of workers and returns the simulated wall time. This is
// what the DAG schedule would cost with that many real CPUs — measured
// per-component serially, so it is computable (and stable) on a
// single-core host where a wall-clock A/B of Workers=1 vs Workers=4
// measures nothing but goroutine overhead.
func simulateMakespan(d []time.Duration, deps [][]int, workers int) time.Duration {
	n := len(d)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, dep := range ds {
			dependents[dep] = append(dependents[dep], i)
		}
	}
	ready := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			ready = append(ready, i)
		}
	}
	free := make([]time.Duration, workers) // next instant each worker is idle
	finish := make([]time.Duration, n)
	running := make([]int, 0, n) // tasks started, sorted by finish time
	started := 0
	for started < n || len(running) > 0 {
		// Start every ready task we have a worker for, longest first.
		sort.Slice(ready, func(a, b int) bool { return d[ready[a]] > d[ready[b]] })
		for len(ready) > 0 {
			// Earliest-idle worker.
			w := 0
			for i := 1; i < workers; i++ {
				if free[i] < free[w] {
					w = i
				}
			}
			t := ready[0]
			// The task may also be gated by its dependencies' finishes.
			start := free[w]
			for _, dep := range deps[t] {
				if finish[dep] > start {
					start = finish[dep]
				}
			}
			free[w] = start + d[t]
			finish[t] = free[w]
			running = append(running, t)
			ready = ready[1:]
			started++
		}
		if len(running) == 0 {
			break
		}
		// Retire the earliest finisher, releasing its dependents.
		sort.Slice(running, func(a, b int) bool { return finish[running[a]] < finish[running[b]] })
		done := running[0]
		running = running[1:]
		for _, dep := range dependents[done] {
			if indeg[dep]--; indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	var makespan time.Duration
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// measureComponents times each call-graph component's allocation
// serially (warm prep, best of rounds) and returns the durations plus
// the component dependency lists.
func measureComponents(b *testing.B, prog *callcost.Program, cfg callcost.Config, rounds int) ([]time.Duration, [][]int) {
	b.Helper()
	cg := callgraph.Build(prog.IR)
	pf := prog.StaticFreq()
	prep := prog.Prepare()
	opts := callcost.DefaultAllocOptions()
	strat := callcost.ImprovedAll()
	n := cg.NumSCCs()
	d := make([]time.Duration, n)
	deps := make([][]int, n)
	for c := 0; c < n; c++ {
		deps[c] = cg.Deps(c)
	}
	for r := 0; r < rounds; r++ {
		for c := 0; c < n; c++ {
			start := time.Now()
			for _, fn := range cg.Members(c) {
				if _, err := regalloc.AllocatePrepared(prep.Func(fn.Name), pf.ByFunc[fn.Name], cfg, strat, rewrite.InsertSpills, opts); err != nil {
					b.Fatal(err)
				}
			}
			el := time.Since(start)
			if r == 0 || el < d[c] {
				d[c] = el
			}
		}
	}
	return d, deps
}

// BenchmarkBatchAllocate measures the whole-program batch driver.
// seq/dag are the wall time of AllocateProgramBatch with Workers=1 vs
// Workers=4 (warm prep) — on a multi-core host their gap is the DAG
// schedule's win; on this repo's single-core CI they necessarily tie,
// so the dag cell additionally reports sched_speedup_x4: the ratio of
// the summed per-component allocation times to the simulated 4-worker
// list-schedule makespan over the real dependency DAG, using
// individually measured component durations. That is the speedup the
// schedule itself provides, gated like any other metric (higher is
// better), independent of how many CPUs the measuring host has.
// ready_peak (informational) is the peak ready-set width the program's
// call graph exposed.
func BenchmarkBatchAllocate(b *testing.B) {
	cfgRegs := callcost.NewConfig(8, 6, 4, 4)
	// ear and li are the real benchmark shapes (narrow DAGs — most of
	// their work is one hot component); calldag is the wide layer where
	// scheduling pays.
	for _, pname := range []string{"ear", "li", "calldag"} {
		prog, _ := batchBenchProgram(b, pname)
		pf := prog.StaticFreq()
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"seq", 1},
			{"dag", 4},
		} {
			b.Run(pname+"/"+mode.name, func(b *testing.B) {
				opts := callcost.DefaultAllocOptions()
				var bs callcost.BatchStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if _, bs, err = prog.AllocateProgramBatch(callcost.ImprovedAll(), cfgRegs, pf, opts, callcost.BatchOptions{Workers: mode.workers}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if mode.name != "dag" {
					return
				}
				b.ReportMetric(float64(bs.ReadyPeak), "ready_peak")
				d, deps := measureComponents(b, prog, cfgRegs, 3)
				var total time.Duration
				for _, el := range d {
					total += el
				}
				makespan := simulateMakespan(d, deps, 4)
				if makespan > 0 {
					b.ReportMetric(float64(total)/float64(makespan), "sched_speedup_x4")
				}
			})
		}
	}
}
