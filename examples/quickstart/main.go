// Quickstart: compile an MC program, register-allocate it with the
// paper's base and improved allocators, and compare the overhead.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

// A miniature version of the paper's motivating scenario: a hot
// function whose cold error path crosses calls. The base allocator
// pays the callee-save save/restore on every entry for values that
// never matter; storage-class analysis does not.
const src = `
int check(int v) { return v % 17; }

int transform(int x) {
	int a = x * 3;
	int b = x + 11;
	if (a > 1000000) {
		int e1 = a + b;
		int e2 = a - b;
		e1 = check(e1) + e2;
		e2 = check(e2) + e1;
		return e1 + e2;
	}
	return a + b;
}

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 5000; i = i + 1) {
		sum = sum + transform(i);
	}
	return sum;
}
`

func main() {
	prog, err := callcost.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the program to get exact execution frequencies — the
	// paper's "dynamic information".
	pf, ref, err := prog.Profile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference result: %d\n\n", ref.RetInt)

	// A mid-sized register file: 8 caller-save + 4 callee-save int
	// registers, 6 + 4 float.
	config := callcost.NewConfig(8, 6, 4, 4)

	for _, strat := range []callcost.Strategy{callcost.Chaitin(), callcost.ImprovedAll()} {
		alloc, err := prog.Allocate(strat, config, pf)
		if err != nil {
			log.Fatal(err)
		}
		// Analytic overhead under the profile weights...
		fmt.Printf("%-22s analytic: %s\n", strat.Name(), alloc.Overhead(pf))
		// ...and the same numbers measured by executing the allocated
		// code on the machine-level interpreter.
		measured, res, err := alloc.MeasuredOverhead()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s measured: %s (result=%d, cycles=%.0f)\n\n",
			"", measured, res.RetInt, res.Counts.Cycles)
	}

	base, _ := prog.Allocate(callcost.Chaitin(), config, pf)
	impr, _ := prog.Allocate(callcost.ImprovedAll(), config, pf)
	fmt.Printf("base/improved overhead ratio: %.2f\n",
		callcost.Ratio(base.Overhead(pf).Total(), impr.Overhead(pf).Total()))
}
