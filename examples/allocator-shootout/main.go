// Allocator shootout: run all five register-allocation approaches of
// the paper over the whole SPEC92 stand-in suite at one register
// configuration and rank them, verifying every allocation by executing
// it.
//
//	go run ./examples/allocator-shootout
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/benchprog"
)

func main() {
	config := callcost.NewConfig(8, 6, 4, 4)
	strategies := []struct {
		name  string
		strat callcost.Strategy
	}{
		{"base Chaitin", callcost.Chaitin()},
		{"optimistic", callcost.Optimistic()},
		{"improved (SC+BS+PR)", callcost.ImprovedAll()},
		{"priority-based", callcost.Priority(callcost.PrioritySorting)},
		{"CBH", callcost.CBH()},
	}

	fmt.Printf("register-allocation overhead at %s (dynamic weights)\n\n", config)
	fmt.Printf("%-10s", "program")
	for _, s := range strategies {
		fmt.Printf(" %20s", s.name)
	}
	fmt.Println()

	wins := make(map[string]int)
	for _, bp := range benchprog.All() {
		prog, err := callcost.Compile(bp.Source)
		if err != nil {
			log.Fatalf("%s: %v", bp.Name, err)
		}
		pf, ref, err := prog.Profile()
		if err != nil {
			log.Fatalf("%s: %v", bp.Name, err)
		}
		fmt.Printf("%-10s", bp.Name)
		best, bestVal := "", 0.0
		for _, s := range strategies {
			alloc, err := prog.Allocate(s.strat, config, pf)
			if err != nil {
				log.Fatalf("%s/%s: %v", bp.Name, s.name, err)
			}
			// Execute the allocated code: a wrong allocation would
			// change the program's answer.
			res, err := alloc.Execute()
			if err != nil {
				log.Fatalf("%s/%s: execute: %v", bp.Name, s.name, err)
			}
			if res.RetInt != ref.RetInt {
				log.Fatalf("%s/%s: WRONG RESULT %d != %d", bp.Name, s.name, res.RetInt, ref.RetInt)
			}
			total := alloc.Overhead(pf).Total()
			fmt.Printf(" %20.0f", total)
			if best == "" || total < bestVal {
				best, bestVal = s.name, total
			}
		}
		wins[best]++
		fmt.Println()
	}

	fmt.Println("\nfewest-overhead wins:")
	for _, s := range strategies {
		fmt.Printf("  %-20s %d\n", s.name, wins[s.name])
	}
}
