// Call-cost sweep: reproduce the paper's Figure 2 observation on a
// call-heavy workload — spill cost vanishes as registers are added,
// call cost persists, and giving the BASE allocator more registers can
// make the program slower.
//
//	go run ./examples/callcost-sweep
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/benchprog"
)

func main() {
	// ear is the suite's most call-dominated workload (an auditory
	// filter bank calling tiny filters per sample per channel).
	prog, err := callcost.Compile(benchprog.ByName("ear").Source)
	if err != nil {
		log.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("base Chaitin allocator on `ear` across the register sweep")
	fmt.Println("(watch spill fall while callee-save cost RISES with more registers)")
	fmt.Printf("\n%-14s %10s %12s %12s %10s\n",
		"(Ri,Rf,Ei,Ef)", "spill", "caller-save", "callee-save", "total")
	for _, cfg := range callcost.Sweep() {
		alloc, err := prog.Allocate(callcost.Chaitin(), cfg, pf)
		if err != nil {
			log.Fatal(err)
		}
		o := alloc.Overhead(pf)
		fmt.Printf("%-14s %10.0f %12.0f %12.0f %10.0f\n",
			cfg, o.Spill, o.Caller, o.Callee, o.Total())
	}

	fmt.Println("\nand the improved allocator (SC+BS+PR) on the same sweep:")
	fmt.Printf("\n%-14s %10s %12s %12s %10s\n",
		"(Ri,Rf,Ei,Ef)", "spill", "caller-save", "callee-save", "total")
	for _, cfg := range callcost.Sweep() {
		alloc, err := prog.Allocate(callcost.ImprovedAll(), cfg, pf)
		if err != nil {
			log.Fatal(err)
		}
		o := alloc.Overhead(pf)
		fmt.Printf("%-14s %10.0f %12.0f %12.0f %10.0f\n",
			cfg, o.Spill, o.Caller, o.Callee, o.Total())
	}
}
