// Profile-guided vs static: the same allocator under estimated
// (compile-time) and profiled (dynamic) execution frequencies — the
// paper's static/dynamic axis. Static estimates assume every branch is
// a coin flip; a profile knows the error path never runs, which changes
// where the benefit functions send live ranges.
//
//	go run ./examples/profile-guided
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
int log_error(int code) { return code % 255; }

int parse(int token) {
	int kind = token % 8;
	int value = token / 8;
	if (kind == 7) {
		// With a 50/50 static estimate this path looks hot; the profile
		// shows it runs once in eight iterations.
		int e1 = value + kind;
		int e2 = value - kind;
		e1 = log_error(e1) + e2;
		e2 = log_error(e2) + e1;
		return e1 + e2;
	}
	return kind * 100 + value;
}

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 4000; i = i + 1) {
		sum = (sum + parse(i)) % 1000003;
	}
	return sum;
}
`

func main() {
	prog, err := callcost.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	static := prog.StaticFreq()
	dynamic, _, err := prog.Profile()
	if err != nil {
		log.Fatal(err)
	}
	config := callcost.NewConfig(8, 6, 4, 4)

	fmt.Println("improved allocator (SC+BS+PR) under two weight models:")
	fmt.Println()

	// Allocate under static estimates, then judge both allocations with
	// the REAL (profiled) weights: this is what the program actually
	// pays at run time.
	aStatic, err := prog.Allocate(callcost.ImprovedAll(), config, static)
	if err != nil {
		log.Fatal(err)
	}
	aDynamic, err := prog.Allocate(callcost.ImprovedAll(), config, dynamic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("allocated with static estimates:  true overhead %s\n", aStatic.Overhead(dynamic))
	fmt.Printf("allocated with profile weights:   true overhead %s\n", aDynamic.Overhead(dynamic))

	ms, _, err := aStatic.MeasuredOverhead()
	if err != nil {
		log.Fatal(err)
	}
	md, _, err := aDynamic.MeasuredOverhead()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured by execution: static-guided %.0f ops, profile-guided %.0f ops\n",
		ms.Total(), md.Total())
	if md.Total() <= ms.Total() {
		fmt.Println("profile-guided allocation is at least as good — as expected")
	} else {
		fmt.Println("static estimates happened to win here — estimates can get lucky")
	}
}
