// Command rallocd is the register-allocation daemon: the paper's
// allocator framework served over HTTP/JSON (package server), with a
// content-addressed result cache, bounded-queue admission, per-request
// deadlines, and the telemetry introspection endpoints mounted beside
// the service.
//
// Serve mode (default):
//
//	rallocd -listen 127.0.0.1:8421
//	curl -s localhost:8421/allocate -d '{"source":"int main() { return 0; }",
//	     "config":{"ri":8,"rf":6,"ei":4,"ef":4},"strategy":"improved"}'
//
// SIGINT/SIGTERM stop admission, drain in-flight requests, and exit.
//
// Load-generator mode:
//
//	rallocd -loadgen -n 2000 -concurrency 128 -seed 1 -verify 50
//
// generates the deterministic randprog request corpus for -seed,
// fires it at -addr (or at a private in-process daemon when -addr is
// empty), and reports the outcome tally; every -verify'th response is
// byte-compared against the in-process oracle. With -batch k the
// corpus is grouped into /batch requests of k items each (exercising
// the batch fan-out path); sampling and verification are per item, by
// global corpus index, so the same -verify sample is checked either
// way. Exit status 1 on any transport error, verification mismatch,
// or non-200/429 response.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/randprog"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8421", "serve address")
		workers = flag.Int("workers", 0, "allocation workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue size beyond running workers (full queue sheds with 429)")
		cacheN  = flag.Int("cache", 0, "result cache entries (0 = default)")
		timeout = flag.Duration("timeout", 0, "per-request deadline (0 = none)")

		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of serving")
		addr        = flag.String("addr", "", "loadgen target base URL (empty = spin up an in-process daemon)")
		n           = flag.Int("n", 1000, "loadgen request count")
		concurrency = flag.Int("concurrency", 64, "loadgen concurrent senders")
		seed        = flag.Int64("seed", 1, "loadgen corpus seed")
		verify      = flag.Int("verify", 0, "byte-verify every n-th response against the in-process oracle (0 = off)")
		batch       = flag.Int("batch", 0, "group the corpus into /batch requests of this many items (0 = one /allocate per request)")
	)
	flag.Parse()

	opts := server.Options{
		Workers:      *workers,
		QueueSize:    *queue,
		CacheEntries: *cacheN,
		Timeout:      *timeout,
	}

	if *loadgen {
		os.Exit(runLoadgen(opts, *addr, *n, *concurrency, *seed, *verify, *batch))
	}
	os.Exit(serve(opts, *listen))
}

func serve(opts server.Options, listen string) int {
	reg := telemetry.NewRegistry()
	telemetry.Enable(reg)
	spans := telemetry.NewSpanRecorder(0)
	opts.Registry = reg
	opts.Spans = spans

	s := server.New(opts)
	httpSrv := &http.Server{Addr: listen, Handler: s, ReadHeaderTimeout: 5 * time.Second}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rallocd: serving on http://%s (/allocate, /batch, /healthz, /metrics, /spans, /debug/pprof)\n", listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "rallocd: %v\n", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rallocd: %v; draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx) //nolint:errcheck // best-effort drain
	s.Close()
	fmt.Fprintln(os.Stderr, "rallocd: drained")
	return 0
}

func runLoadgen(opts server.Options, addr string, n, concurrency int, seed int64, verify, batch int) int {
	base := addr
	if base == "" {
		// Private in-process daemon: same handler stack as serve mode,
		// exercised through real HTTP.
		telemetry.Enable(nil)
		s := server.New(opts)
		ts := httptest.NewServer(s)
		defer func() {
			ts.Close()
			s.Close()
		}()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "rallocd: loadgen against in-process daemon %s\n", base)
	}
	bodies := randprog.Corpus(seed, n)
	var stats *server.LoadStats
	var err error
	if batch > 0 {
		stats, err = server.RunBatchLoad(base, bodies, batch, concurrency, verify)
	} else {
		stats, err = server.RunLoad(base, bodies, concurrency, verify)
	}
	fmt.Println(stats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rallocd: loadgen: %v\n", err)
		return 1
	}
	if len(stats.Other) > 0 {
		fmt.Fprintf(os.Stderr, "rallocd: loadgen: non-200/429 responses: %v\n", stats.Other)
		return 1
	}
	return 0
}
