// Command rallocc is the compiler driver of the reproduction: it
// compiles an MC source file, register-allocates it with a selectable
// strategy on a selectable register configuration, and reports the
// register-allocation overhead.
//
// Usage:
//
//	rallocc [flags] file.mc
//
//	-strategy  chaitin | optimistic | improved | sc | sc+bs | priority | cbh | linscan | hybrid
//	-config    Ri,Rf,Ei,Ef   (default 8,6,4,4)
//	-static    use estimated frequencies instead of a profiling run
//	-run       execute the allocated program and verify the result
//	-ir        print the IR after allocation (with spill code)
//	-S         emit MIPS-flavored assembly
//	-explain   print the allocation narrative (every decision and why)
//	-trace     write the allocator's JSONL event log to a file
//	-stats     print phase timings, decision counters, and the overhead breakdown
//	-sweep     report overhead across the paper's register sweep
//	-parallel  per-function allocation workers (0 = all cores, 1 = sequential)
//	-interproc whole-program batch allocation: callees first over the call
//	           graph, callers consume realized callee-save summaries
//	-noprepcache  rebuild round-0 artifacts per allocation instead of sharing them
//	-passes    print the resolved allocation pass pipeline and exit
//	-metrics   enable telemetry and print the metrics registry after the run
//	-listen    serve /metrics, /spans, and pprof on this address during the run
//
// -explain, -trace, and -stats are three views of the same event
// stream (package obs): the narrative is the human rendering, the
// JSONL log the machine one, and -stats the aggregation — they can
// never disagree, because they observe identical events.
//
// -metrics and -listen tap the telemetry layer instead (package
// telemetry): cheap always-on counters and histograms fed by the
// allocator's instrumentation sites, plus the span tree derived from
// the event stream. With -listen the process stays alive after the
// run (Ctrl-C to exit) so the endpoints can be inspected.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro"
	"repro/internal/freq"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	strategy := flag.String("strategy", "improved", "allocation strategy")
	config := flag.String("config", "8,6,4,4", "register configuration Ri,Rf,Ei,Ef")
	static := flag.Bool("static", false, "use static frequency estimates")
	run := flag.Bool("run", false, "execute the allocated program")
	printIR := flag.Bool("ir", false, "print the allocated IR")
	printAsm := flag.Bool("S", false, "emit MIPS-flavored assembly")
	explain := flag.Bool("explain", false, "print the allocation narrative")
	traceFile := flag.String("trace", "", "write the JSONL allocator event log to `file`")
	stats := flag.Bool("stats", false, "print phase timings and decision counters")
	sweep := flag.Bool("sweep", false, "report overhead across the register sweep")
	parallel := flag.Int("parallel", 0, "per-function allocation workers (0 = all cores, 1 = sequential); output is identical either way")
	interproc := flag.Bool("interproc", false, "whole-program batch allocation with interprocedural callee-save costs (callees first over the call graph)")
	noPrepCache := flag.Bool("noprepcache", false, "disable the shared round-0 prep cache, for A/B timing")
	passes := flag.Bool("passes", false, "print the resolved allocation pass pipeline and exit")
	metricsDump := flag.Bool("metrics", false, "enable telemetry and print the metrics registry (JSON) after the run")
	listen := flag.String("listen", "", "serve /metrics, /spans, and /debug/pprof on `addr` (e.g. localhost:6060); stays alive after the run")
	flag.Parse()

	if *passes {
		if err := printPasses(*strategy); err != nil {
			fmt.Fprintf(os.Stderr, "rallocc: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rallocc [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	opts := options{
		strategy: *strategy, config: *config, static: *static, run: *run,
		printIR: *printIR, printAsm: *printAsm, explain: *explain,
		traceFile: *traceFile, stats: *stats, sweep: *sweep,
		parallel: *parallel, noPrepCache: *noPrepCache,
		interproc: *interproc,
		metrics:   *metricsDump, listen: *listen,
	}
	if opts.metrics || opts.listen != "" {
		telemetry.Enable(nil)
	}
	if opts.listen != "" {
		opts.spans = telemetry.NewSpanRecorder(0)
		srv, err := telemetry.Serve(opts.listen, nil, opts.spans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rallocc: -listen: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rallocc: telemetry on http://%s (/metrics, /spans, /debug/pprof)\n", srv.Addr)
	}
	if err := mainErr(flag.Arg(0), opts); err != nil {
		fmt.Fprintf(os.Stderr, "rallocc: %v\n", err)
		os.Exit(1)
	}
	if opts.spans != nil {
		opts.spans.Flush()
	}
	if opts.metrics {
		fmt.Println("\ntelemetry metrics:")
		if b := telemetry.B(); b != nil {
			b.Reg.Snapshot().WriteJSON(os.Stdout) //nolint:errcheck // best-effort dump
		}
	}
	if opts.listen != "" {
		fmt.Fprintln(os.Stderr, "rallocc: run finished; telemetry still serving — Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

type options struct {
	strategy, config, traceFile    string
	static, run, printIR, printAsm bool
	explain, stats, sweep          bool
	parallel                       int
	noPrepCache                    bool
	interproc                      bool
	metrics                        bool
	listen                         string
	spans                          *telemetry.SpanRecorder
}

func parseStrategy(name string) (callcost.Strategy, error) {
	switch name {
	case "chaitin", "base":
		return callcost.Chaitin(), nil
	case "optimistic":
		return callcost.Optimistic(), nil
	case "improved", "sc+bs+pr":
		return callcost.ImprovedAll(), nil
	case "sc":
		return callcost.Improved(true, false, false), nil
	case "sc+bs":
		return callcost.Improved(true, true, false), nil
	case "priority":
		return callcost.Priority(callcost.PrioritySorting), nil
	case "cbh":
		return callcost.CBH(), nil
	case "linscan":
		return callcost.LinearScan(), nil
	case "hybrid":
		return callcost.HybridTiered(), nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// printPasses renders the pass pipeline the chosen strategy would run
// under the default options: every stage in order, with the analyses
// each one preserves (what the runner keeps valid after the pass; the
// spill rewrite preserves nothing, which is why a spilling round forces
// recomputation).
func printPasses(strategy string) error {
	strat, err := parseStrategy(strategy)
	if err != nil {
		return err
	}
	pl := callcost.PipelineFor(strat, callcost.DefaultAllocOptions())
	fmt.Printf("allocation pipeline for strategy %s:\n", strat.Name())
	for i, p := range pl.Passes() {
		fmt.Printf("  %d. %-14s preserves %s\n", i+1, p.Name(), p.Preserves())
	}
	fmt.Printf("\n%s\n", pl)
	fmt.Println("\nthe runner repeats the pipeline until the color pass spills nothing;")
	fmt.Println("a skipped pass (spill-rewrite on a converged round) emits no phase events.")
	return nil
}

func parseConfig(s string) (callcost.Config, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return callcost.Config{}, fmt.Errorf("config must be Ri,Rf,Ei,Ef, got %q", s)
	}
	var v [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v[i]); err != nil {
			return callcost.Config{}, fmt.Errorf("bad config element %q", p)
		}
	}
	return callcost.NewConfig(v[0], v[1], v[2], v[3]), nil
}

// sinks bundles the tracing sinks requested on the command line.
type sinks struct {
	narrative *bytes.Buffer // -explain
	traceOut  *os.File      // -trace
	stats     *callcost.StatsSink
	tracer    callcost.Tracer
}

func buildSinks(o options) (*sinks, error) {
	s := &sinks{}
	var ts []callcost.Tracer
	if o.explain {
		s.narrative = &bytes.Buffer{}
		ts = append(ts, callcost.NewNarrativeSink(s.narrative))
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return nil, err
		}
		s.traceOut = f
		ts = append(ts, callcost.NewJSONLSink(f))
	}
	if o.stats {
		s.stats = callcost.NewStatsSink()
		ts = append(ts, s.stats)
	}
	if o.spans != nil {
		ts = append(ts, o.spans)
	}
	if len(ts) > 0 {
		s.tracer = callcost.MultiSink(ts...)
	}
	return s, nil
}

func (s *sinks) close() error {
	if s.traceOut != nil {
		return s.traceOut.Close()
	}
	return nil
}

func mainErr(path string, o options) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := callcost.Compile(string(src))
	if err != nil {
		return err
	}
	strat, err := parseStrategy(o.strategy)
	if err != nil {
		return err
	}

	var pf *freq.ProgramFreq
	if o.static {
		pf = prog.StaticFreq()
	} else {
		var err error
		pf, _, err = prog.Profile()
		if err != nil {
			return fmt.Errorf("profiling run: %w", err)
		}
	}

	sk, err := buildSinks(o)
	if err != nil {
		return err
	}
	defer sk.close()
	allocOpts := callcost.WithTracer(callcost.DefaultAllocOptions(), sk.tracer)
	allocOpts.Parallel = o.parallel
	allocOpts.NoPrepCache = o.noPrepCache
	// The span recorder is order-independent (state keyed by function),
	// so when it is the only sink attached, keep the parallel pool
	// instead of letting the tracer force the sequential path. The
	// ordered sinks (-explain, -trace, -stats) still force sequential.
	allocOpts.TraceParallel = o.spans != nil && !o.explain && o.traceFile == "" && !o.stats

	var batchStats *callcost.BatchStats
	allocate := func(cfg callcost.Config) (*callcost.Allocation, error) {
		if !o.interproc {
			return prog.AllocateWithOptions(strat, cfg, pf, allocOpts)
		}
		a, bs, err := prog.AllocateProgramBatch(strat, cfg, pf, allocOpts,
			callcost.BatchOptions{Interproc: true, Workers: o.parallel})
		batchStats = &bs
		return a, err
	}

	if o.sweep {
		fmt.Printf("%-14s %12s %12s %12s %12s %12s\n",
			"(Ri,Rf,Ei,Ef)", "spill", "caller-save", "callee-save", "shuffle", "total")
		for _, cfg := range machine.Sweep() {
			alloc, err := allocate(cfg)
			if err != nil {
				return err
			}
			ov := alloc.Overhead(pf)
			fmt.Printf("%-14s %12.0f %12.0f %12.0f %12.0f %12.0f\n",
				cfg, ov.Spill, ov.Caller, ov.Callee, ov.Shuffle, ov.Total())
		}
		printSinks(sk, callcost.Overhead{})
		return nil
	}

	cfg, err := parseConfig(o.config)
	if err != nil {
		return err
	}
	alloc, err := allocate(cfg)
	if err != nil {
		return err
	}

	if o.printAsm {
		fmt.Print(alloc.Assembly())
		return nil
	}

	fmt.Printf("strategy %s, configuration %s\n\n", strat.Name(), cfg)
	names := make([]string, 0, len(alloc.Plans))
	for name := range alloc.Plans {
		names = append(names, name)
	}
	sort.Strings(names)
	var total callcost.Overhead
	for _, name := range names {
		plan := alloc.Plans[name]
		ov := metrics.Analytic(plan, pf.ByFunc[name])
		total = total.Add(ov)
		fmt.Printf("%-20s %s  (rounds=%d)\n", name, ov, plan.Alloc.Rounds)
		if o.printIR {
			fmt.Println(plan.Alloc.Fn.String())
		}
	}
	fmt.Printf("%-20s %s\n", "program", total)
	if batchStats != nil {
		fmt.Printf("\nbatch schedule: %d components (%d recursive), %d waves, ready peak %d; "+
			"summaries consumed at %d/%d call sites\n",
			batchStats.SCCs, batchStats.Recursive, batchStats.Waves, batchStats.ReadyPeak,
			batchStats.SummaryHits, batchStats.SummaryHits+batchStats.SummaryMisses)
	}
	printSinks(sk, total)

	if o.run {
		res, err := alloc.Execute()
		if err != nil {
			return err
		}
		ref, err := prog.Run()
		if err != nil {
			return err
		}
		status := "MATCHES reference"
		if res.RetInt != ref.RetInt {
			status = fmt.Sprintf("MISMATCH (reference %d)", ref.RetInt)
		}
		fmt.Printf("\nexecuted: result=%d %s\n", res.RetInt, status)
		fmt.Printf("steps=%d cycles=%.0f measured-overhead=%.0f\n",
			res.Counts.Steps, res.Counts.Cycles, res.Counts.OverheadOps())
	}
	return nil
}

// printSinks replays the narrative and renders the stats tables after
// the summary. The narrative is the event stream verbatim, so its
// numbers always agree with -trace output for the same run.
func printSinks(sk *sinks, total callcost.Overhead) {
	if sk.narrative != nil {
		fmt.Printf("\nallocation narrative:\n%s", sk.narrative.String())
	}
	if sk.stats != nil {
		fmt.Printf("\nallocation statistics (%d events):\n", sk.stats.TotalEvents())
		metrics.WritePhaseTable(os.Stdout, sk.stats)
		fmt.Printf("\n%-20s %8s %8s %8s %8s %8s %8s\n",
			"function", "rounds", "merges", "pops", "assigns", "spills", "rewrites")
		for _, fs := range sk.stats.Funcs() {
			fmt.Printf("%-20s %8d %8d %8d %8d %8d %8d\n",
				fs.Fn, fs.Rounds,
				fs.Counts[obs.KindCoalesceMerge], fs.Counts[obs.KindSimplifyPop],
				fs.Counts[obs.KindColorAssign], fs.Counts[obs.KindSpillChoice],
				fs.Counts[obs.KindRewriteInsert])
		}
		if total.Total() > 0 {
			b := total.Breakdown()
			fmt.Printf("\noverhead breakdown: spill=%.1f%% caller=%.1f%% callee=%.1f%% shuffle=%.1f%%\n",
				b.Spill, b.Caller, b.Callee, b.Shuffle)
		}
	}
}
