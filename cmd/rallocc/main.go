// Command rallocc is the compiler driver of the reproduction: it
// compiles an MC source file, register-allocates it with a selectable
// strategy on a selectable register configuration, and reports the
// register-allocation overhead.
//
// Usage:
//
//	rallocc [flags] file.mc
//
//	-strategy  chaitin | optimistic | improved | sc | sc+bs | priority | cbh
//	-config    Ri,Rf,Ei,Ef   (default 8,6,4,4)
//	-static    use estimated frequencies instead of a profiling run
//	-run       execute the allocated program and verify the result
//	-ir        print the IR after allocation (with spill code)
//	-S         emit MIPS-flavored assembly
//	-explain   print per-live-range costs, benefits, and placements
//	-sweep     report overhead across the paper's register sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/codegen"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/rewrite"
)

// explainRanges prints the storage-class story of every live range: the
// three candidate costs (memory, caller-save, callee-save), the benefit
// functions the allocator compared, and where the range ended up.
func explainRanges(plan *rewrite.FuncPlan, config callcost.Config) {
	fa := plan.Alloc
	fn := fa.Fn
	type row struct {
		rep  ir.Reg
		name string
	}
	var rows []row
	for rep := range fa.Ranges.Ranges {
		name := fn.RegName(rep)
		if name == "" {
			name = fmt.Sprintf("v%d", int(rep))
		}
		rows = append(rows, row{rep, name})
	}
	sort.Slice(rows, func(i, j int) bool {
		return fa.Ranges.Ranges[rows[i].rep].SpillCost > fa.Ranges.Ranges[rows[j].rep].SpillCost
	})
	fmt.Printf("  %-12s %-6s %10s %10s %10s %8s %10s\n",
		"range", "class", "spillcost", "callercost", "calleecost", "crosses", "placement")
	for _, r := range rows {
		rg := fa.Ranges.Ranges[r.rep]
		place := "memory"
		if col := fa.Colors[r.rep]; col != machine.NoPhysReg {
			place = codegen.RegName(config, rg.Class, col)
		}
		crosses := "-"
		if rg.CrossesCall {
			crosses = "yes"
		}
		fmt.Printf("  %-12s %-6s %10.0f %10.0f %10.0f %8s %10s\n",
			r.name, rg.Class, rg.SpillCost, rg.CallerCost, rg.CalleeCost, crosses, place)
	}
}

func main() {
	strategy := flag.String("strategy", "improved", "allocation strategy")
	config := flag.String("config", "8,6,4,4", "register configuration Ri,Rf,Ei,Ef")
	static := flag.Bool("static", false, "use static frequency estimates")
	run := flag.Bool("run", false, "execute the allocated program")
	printIR := flag.Bool("ir", false, "print the allocated IR")
	printAsm := flag.Bool("S", false, "emit MIPS-flavored assembly")
	explain := flag.Bool("explain", false, "print per-live-range costs, benefits, and placements")
	sweep := flag.Bool("sweep", false, "report overhead across the register sweep")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rallocc [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	if err := mainErr(flag.Arg(0), *strategy, *config, *static, *run, *printIR, *printAsm, *explain, *sweep); err != nil {
		fmt.Fprintf(os.Stderr, "rallocc: %v\n", err)
		os.Exit(1)
	}
}

func parseStrategy(name string) (callcost.Strategy, error) {
	switch name {
	case "chaitin", "base":
		return callcost.Chaitin(), nil
	case "optimistic":
		return callcost.Optimistic(), nil
	case "improved", "sc+bs+pr":
		return callcost.ImprovedAll(), nil
	case "sc":
		return callcost.Improved(true, false, false), nil
	case "sc+bs":
		return callcost.Improved(true, true, false), nil
	case "priority":
		return callcost.Priority(callcost.PrioritySorting), nil
	case "cbh":
		return callcost.CBH(), nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func parseConfig(s string) (callcost.Config, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return callcost.Config{}, fmt.Errorf("config must be Ri,Rf,Ei,Ef, got %q", s)
	}
	var v [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v[i]); err != nil {
			return callcost.Config{}, fmt.Errorf("bad config element %q", p)
		}
	}
	return callcost.NewConfig(v[0], v[1], v[2], v[3]), nil
}

func mainErr(path, stratName, configStr string, static, run, printIR, printAsm, explain, sweepAll bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := callcost.Compile(string(src))
	if err != nil {
		return err
	}
	strat, err := parseStrategy(stratName)
	if err != nil {
		return err
	}

	var pf *freq.ProgramFreq
	if static {
		pf = prog.StaticFreq()
	} else {
		var err error
		pf, _, err = prog.Profile()
		if err != nil {
			return fmt.Errorf("profiling run: %w", err)
		}
	}

	if sweepAll {
		fmt.Printf("%-14s %12s %12s %12s %12s %12s\n",
			"(Ri,Rf,Ei,Ef)", "spill", "caller-save", "callee-save", "shuffle", "total")
		for _, cfg := range machine.Sweep() {
			alloc, err := prog.Allocate(strat, cfg, pf)
			if err != nil {
				return err
			}
			o := alloc.Overhead(pf)
			fmt.Printf("%-14s %12.0f %12.0f %12.0f %12.0f %12.0f\n",
				cfg, o.Spill, o.Caller, o.Callee, o.Shuffle, o.Total())
		}
		return nil
	}

	cfg, err := parseConfig(configStr)
	if err != nil {
		return err
	}
	alloc, err := prog.Allocate(strat, cfg, pf)
	if err != nil {
		return err
	}

	if printAsm {
		fmt.Print(alloc.Assembly())
		return nil
	}

	fmt.Printf("strategy %s, configuration %s\n\n", strat.Name(), cfg)
	names := make([]string, 0, len(alloc.Plans))
	for name := range alloc.Plans {
		names = append(names, name)
	}
	sort.Strings(names)
	var total callcost.Overhead
	for _, name := range names {
		plan := alloc.Plans[name]
		o := metrics.Analytic(plan, pf.ByFunc[name])
		total = total.Add(o)
		fmt.Printf("%-20s %s  (rounds=%d)\n", name, o, plan.Alloc.Rounds)
		if explain {
			explainRanges(plan, cfg)
		}
		if printIR {
			fmt.Println(plan.Alloc.Fn.String())
		}
	}
	fmt.Printf("%-20s %s\n", "program", total)

	if run {
		res, err := alloc.Execute()
		if err != nil {
			return err
		}
		ref, err := prog.Run()
		if err != nil {
			return err
		}
		status := "MATCHES reference"
		if res.RetInt != ref.RetInt {
			status = fmt.Sprintf("MISMATCH (reference %d)", ref.RetInt)
		}
		fmt.Printf("\nexecuted: result=%d %s\n", res.RetInt, status)
		fmt.Printf("steps=%d cycles=%.0f measured-overhead=%.0f\n",
			res.Counts.Steps, res.Counts.Cycles, res.Counts.OverheadOps())
	}
	return nil
}
