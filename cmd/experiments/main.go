// Command experiments regenerates the paper's tables and figures over
// the SPEC92 stand-in suite.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig2
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
	case *all:
		env := experiments.NewEnv()
		for _, e := range experiments.All() {
			if err := e.Run(env, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		e := experiments.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := e.Run(experiments.NewEnv(), os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
