// Command experiments regenerates the paper's tables and figures over
// the SPEC92 stand-in suite.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig2
//	experiments -all
//	experiments -timing -exp fig6   (append a per-phase timing table)
//	experiments -metrics -exp tab4  (print the telemetry registry after the run)
//	experiments -listen localhost:6060 -all   (live /metrics, /spans, pprof)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	timing := flag.Bool("timing", false, "print a per-phase allocator timing table after each experiment")
	parallel := flag.Int("parallel", 0, "per-function allocation workers (0 = all cores, 1 = sequential); output is identical either way")
	noPrepCache := flag.Bool("noprepcache", false, "disable the shared round-0 prep cache (rebuild CFG/liveness/graphs per cell), for A/B timing")
	metricsDump := flag.Bool("metrics", false, "enable telemetry and print the metrics registry (JSON) after the run")
	listen := flag.String("listen", "", "serve /metrics, /spans, and /debug/pprof on `addr`; stays alive after the run")
	flag.Parse()

	if *metricsDump || *listen != "" {
		telemetry.Enable(nil)
	}
	var spans *telemetry.SpanRecorder
	if *listen != "" {
		spans = telemetry.NewSpanRecorder(0)
		srv, err := telemetry.Serve(*listen, nil, spans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -listen: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: telemetry on http://%s (/metrics, /spans, /debug/pprof)\n", srv.Addr)
	}

	env := experiments.NewEnv()
	var stats *obs.Stats
	if *timing {
		stats = obs.NewStats()
	}
	switch {
	case stats != nil && spans != nil:
		env.SetTracer(obs.NewMulti(stats, spans))
	case stats != nil:
		env.SetTracer(stats)
	case spans != nil:
		env.SetTracer(spans)
	}
	env.SetParallel(*parallel)
	env.SetPrepCache(!*noPrepCache)
	// runOne executes e and, under -timing, appends the phase-timing
	// table for the allocations the figure ran (the stats sink is reset
	// between figures so each table is per-figure).
	runOne := func(e *experiments.Experiment) error {
		if err := e.Run(env, os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if stats != nil {
			fmt.Printf("\n%s allocator phase timing (%d events):\n", e.ID, stats.TotalEvents())
			metrics.WritePhaseTable(os.Stdout, stats)
			stats.Reset()
		}
		if spans != nil {
			spans.Flush() // one program span per experiment
		}
		return nil
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		e := experiments.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *metricsDump {
		fmt.Println("\ntelemetry metrics:")
		if b := telemetry.B(); b != nil {
			b.Reg.Snapshot().WriteJSON(os.Stdout) //nolint:errcheck // best-effort dump
		}
	}
	if *listen != "" {
		fmt.Fprintln(os.Stderr, "experiments: run finished; telemetry still serving — Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}
