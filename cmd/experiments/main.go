// Command experiments regenerates the paper's tables and figures over
// the SPEC92 stand-in suite.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig2
//	experiments -all
//	experiments -timing -exp fig6   (append a per-phase timing table)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	timing := flag.Bool("timing", false, "print a per-phase allocator timing table after each experiment")
	parallel := flag.Int("parallel", 0, "per-function allocation workers (0 = all cores, 1 = sequential); output is identical either way")
	noPrepCache := flag.Bool("noprepcache", false, "disable the shared round-0 prep cache (rebuild CFG/liveness/graphs per cell), for A/B timing")
	flag.Parse()

	env := experiments.NewEnv()
	var stats *obs.Stats
	if *timing {
		stats = obs.NewStats()
		env.SetTracer(stats)
	}
	env.SetParallel(*parallel)
	env.SetPrepCache(!*noPrepCache)
	// runOne executes e and, under -timing, appends the phase-timing
	// table for the allocations the figure ran (the stats sink is reset
	// between figures so each table is per-figure).
	runOne := func(e *experiments.Experiment) error {
		if err := e.Run(env, os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if stats != nil {
			fmt.Printf("\n%s allocator phase timing (%d events):\n", e.ID, stats.TotalEvents())
			metrics.WritePhaseTable(os.Stdout, stats)
			stats.Reset()
		}
		return nil
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		e := experiments.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
