// benchdiff is the benchmark regression gate: it compares two
// measurement files (or a fresh benchmark run against a checked-in
// baseline) and exits nonzero when a metric moved the wrong way past
// the noise threshold. CI runs it as a smoke step against BENCH_8.json.
//
// Two-file mode diffs every numeric leaf the files share:
//
//	benchdiff -threshold 0.2 BENCH_6.json BENCH_7.json
//
// Run mode executes `go test -bench` itself, canonicalizes the
// SpillRound, AllocateProgram, AllocateStrategy, ServerAllocate, and
// BatchAllocate metrics — including AllocateStrategy's custom
// "overhead" and "escalated" units, which gate the pareto sweep's
// quality axes, and BatchAllocate's "sched_speedup_x4", which gates
// the call-graph schedule's available parallelism — to the baseline's
// paths, and diffs those. Metrics the baseline does not
// carry are printed as explicit WARNINGs instead of passing silently:
//
//	benchdiff -bench -baseline BENCH_8.json -benchtime 200x -threshold 0.5 -o current.json
//
// The threshold is relative (0.5 = 50%); run mode wants a generous one,
// since short -benchtime runs on shared CI hardware are noisy.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/benchdiff"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		bench     = flag.Bool("bench", false, "run `go test -bench` and diff against -baseline instead of diffing two files")
		baseline  = flag.String("baseline", "", "baseline JSON file for -bench mode")
		pattern   = flag.String("pattern", "BenchmarkSpillRound$|BenchmarkAllocateProgram$|BenchmarkAllocateStrategy$|BenchmarkServerAllocate$|BenchmarkBatchAllocate$", "benchmark regexp for -bench mode")
		benchtime = flag.String("benchtime", "200x", "go test -benchtime for -bench mode")
		pkg       = flag.String("pkg", ".", "package to benchmark in -bench mode")
		out       = flag.String("o", "", "write the current measurements as flat JSON to this file")
		threshold = flag.Float64("threshold", 0.2, "relative noise band; larger deltas against the metric direction regress")
	)
	flag.Parse()

	var rep *benchdiff.Report
	var err error
	if *bench {
		rep, err = runBenchMode(*baseline, *pattern, *benchtime, *pkg, *out, *threshold)
	} else {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json current.json  (or -bench -baseline file)")
			flag.PrintDefaults()
			return 2
		}
		rep, err = benchdiff.DiffFiles(flag.Arg(0), flag.Arg(1), *threshold)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	return rep.ExitCode()
}

func runBenchMode(baseline, pattern, benchtime, pkg, out string, threshold float64) (*benchdiff.Report, error) {
	if baseline == "" {
		return nil, fmt.Errorf("-bench mode needs -baseline")
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern, "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	os.Stdout.Write(raw)
	parsed, err := benchdiff.ParseBenchOutput(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	cur := benchdiff.Canonicalize(parsed)
	if out != "" {
		doc, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	base, err := benchdiff.LoadFlat(baseline)
	if err != nil {
		return nil, err
	}
	// Only the sections the fresh run re-measures can gate; everything
	// else in the baseline would show up as baseline-only noise.
	base = benchdiff.Restrict(base,
		"spill_round.round1_plus_us_per_op.",
		"spill_round.ns_per_op.",
		"allocate_program.ns_per_op.",
		"allocate_strategy.ns_per_op.",
		"pareto.overhead.",
		"pareto.escalated.",
		"server_allocate.ns_per_op.",
		"batch.ns_per_op.",
		"batch.sched_speedup_x4.",
		"batch.ready_peak.")
	return benchdiff.Compare(base, cur, threshold), nil
}
