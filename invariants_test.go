package callcost

import (
	"sort"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/machine"
	"repro/internal/rewrite"
)

// This file holds the strategy-agnostic allocation invariants: every
// registered strategy — graph-coloring, priority, linear scan, hybrid
// — must produce allocations where no two simultaneously-live ranges
// of a bank share a register, and where the allocated program computes
// exactly what the source-level interpreter computes. The interference
// check here is deliberately independent of rewrite.Validate (it
// recomputes liveness from scratch and tests pure simultaneous
// liveness), so a bug in the shared validator cannot hide a bug in a
// strategy.

var invariantConfigs = []machine.Config{
	machine.NewConfig(6, 4, 0, 0), // calling-convention minimum, heavy spilling
	machine.NewConfig(8, 6, 4, 4), // mid-size with callee-save banks
}

// checkInterferenceInvariant verifies, from a fresh liveness solve,
// that no two interfering live ranges of a bank share a register.
// Interference is Chaitin's definition — r interferes with d when r is
// live across a definition of d (a move's source excepted: source and
// destination hold the same value, which is exactly what coalescing
// exploits) — because under coalescing, simultaneously-live
// move-related ranges legitimately share a register. Parameters are
// definitions at entry, so live-in parameters must be pairwise
// distinct.
func checkInterferenceInvariant(t *testing.T, strat string, plan *rewrite.FuncPlan) {
	t.Helper()
	fa := plan.Alloc
	fn := fa.Fn
	live := liveness.Compute(fn, cfg.New(fn))
	badColor := func(r ir.Reg) bool {
		col := fa.Colors[r]
		return col == machine.NoPhysReg || int(col) >= fa.Config.Total(fn.RegClass(r))
	}
	// Live-in parameters are simultaneous definitions at entry.
	var seen [ir.NumClasses]map[machine.PhysReg]ir.Reg
	entryIn := live.In[fn.Entry().ID]
	for _, p := range fn.Params {
		if !entryIn.Has(int(p)) {
			continue
		}
		if badColor(p) {
			t.Errorf("%s: live-in parameter %v of %s has invalid color %v",
				strat, p, fn.Name, fa.Colors[p])
			continue
		}
		c := fn.RegClass(p)
		if seen[c] == nil {
			seen[c] = make(map[machine.PhysReg]ir.Reg)
		}
		if prev, clash := seen[c][fa.Colors[p]]; clash {
			t.Errorf("%s: parameters %v and %v of %s share register %v",
				strat, prev, p, fn.Name, fa.Colors[p])
			continue
		}
		seen[c][fa.Colors[p]] = p
	}
	for _, b := range fn.Blocks {
		b := b
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() {
				return
			}
			d := in.Dst
			if badColor(d) {
				t.Errorf("%s: block %d: definition of %v in %s has invalid color %v",
					strat, b.ID, d, fn.Name, fa.Colors[d])
				return
			}
			moveSrc := ir.NoReg
			if in.Op == ir.OpMove {
				moveSrc = in.Args[0]
			}
			c, col := fn.RegClass(d), fa.Colors[d]
			after.ForEach(func(i int) {
				r := ir.Reg(i)
				if r == d || r == moveSrc || fn.RegClass(r) != c {
					return
				}
				if badColor(r) {
					t.Errorf("%s: block %d: live register %v of %s has invalid color %v",
						strat, b.ID, r, fn.Name, fa.Colors[r])
					return
				}
				if fa.Colors[r] == col {
					t.Errorf("%s: block %d after %v: defining %v clobbers live %v in register %v of %s",
						strat, b.ID, in.Op, d, r, col, fn.Name)
				}
			})
		})
	}
}

// TestStrategyInvariants runs every registered strategy over every
// benchmark program at both machine configurations, checking the
// interference invariant and that minterp execution results are
// byte-identical across strategies and equal to the source-level
// interpreter's reference result.
func TestStrategyInvariants(t *testing.T) {
	strategies := Strategies()
	names := make([]string, 0, len(strategies))
	for n := range strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, prog := range benchprog.Names() {
		prog := prog
		t.Run(prog, func(t *testing.T) {
			t.Parallel()
			p := MustCompile(benchprog.ByName(prog).Source)
			pf, ref, err := p.Profile()
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			for _, config := range invariantConfigs {
				for _, sname := range names {
					a, err := p.Allocate(strategies[sname], config, pf)
					if err != nil {
						t.Fatalf("%s at %s: allocate: %v", sname, config, err)
					}
					for _, plan := range a.Plans {
						checkInterferenceInvariant(t, sname, plan)
					}
					res, err := a.Execute()
					if err != nil {
						t.Fatalf("%s at %s: execute: %v", sname, config, err)
					}
					if res.RetInt != ref.RetInt {
						t.Errorf("%s at %s: returned %d, reference interpreter returned %d",
							sname, config, res.RetInt, ref.RetInt)
					}
				}
			}
		})
	}
}
