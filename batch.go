package callcost

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/freq"
	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
)

// BatchOptions configures AllocateProgramBatch.
type BatchOptions struct {
	// Interproc enables interprocedural callee-save costs: callees are
	// allocated before their callers (call-graph order), each callee
	// publishes its realized clobber summary — the caller-save registers
	// its allocated code may actually write — and callers consume those
	// summaries both in the cost model (a call into a known callee
	// charges 2·|clobbered ∩ bank|/|bank| per crossing instead of the
	// paper's flat 2) and in save placement (a crossing caller-save
	// register is saved only when the callee may write it). Calls to
	// external callees and within a recursive component keep the paper's
	// static estimate. Off (false), the batch driver's output is
	// byte-identical to AllocateWithOptions.
	Interproc bool
	// Workers bounds the scheduling worker pool: <= 0 selects
	// GOMAXPROCS, 1 forces sequential execution. Independent of
	// AllocOptions.Parallel, which the batch driver ignores — the unit
	// of parallelism here is the call-graph component, not the function.
	Workers int
}

// BatchStats reports scheduling facts of one AllocateProgramBatch run.
type BatchStats struct {
	// SCCs is the number of condensed call-graph components (the task
	// count of the scheduling DAG); Recursive the subset that is
	// genuinely recursive.
	SCCs, Recursive int
	// Waves is the depth of the lock-step wave partition — the longest
	// dependency chain in the condensed call graph. The DAG schedule is
	// wave-free, but Waves still bounds its critical path.
	Waves int
	// ReadyPeak is the maximum number of components that were
	// simultaneously ready during the run — the parallelism the
	// program's call-graph shape exposed.
	ReadyPeak int
	// SummaryHits counts call sites whose caller consumed a published
	// callee clobber summary; SummaryMisses the sites that kept the
	// static estimate (external callee, same recursive component, or
	// interprocedural costs disabled).
	SummaryHits, SummaryMisses int
}

// AllocateProgramBatch register-allocates the whole program as one
// batch scheduled over its call graph: the condensed components
// (recursive functions collapse into one) form a task DAG, dependencies
// pointing at callees, executed on a bounded worker pool the moment
// their last callee finishes — independent subtrees run concurrently,
// with no wave barriers.
//
// With bopts.Interproc set, the call-graph order is what makes
// interprocedural callee-save costs sound: every callee's summary is
// published before any caller starts, so results are deterministic and
// independent of the worker schedule. With it clear, the driver runs
// the same per-function allocation as AllocateWithOptions and the
// output is byte-identical to it — colors, spill slots, assembly, and
// overhead — which the differential tests assert.
func (p *Program) AllocateProgramBatch(strat Strategy, config Config, pf *freq.ProgramFreq, opts AllocOptions, bopts BatchOptions) (*Allocation, BatchStats, error) {
	if !config.Valid() {
		return nil, BatchStats{}, fmt.Errorf("callcost: configuration %s below the calling-convention minimum (%d,%d,0,0)",
			config, machine.MinCallerInt, machine.MinCallerFloat)
	}
	cg := callgraph.Build(p.IR)

	var cc *interproc.Table
	if bopts.Interproc {
		cc = interproc.NewTable(config)
	}
	opts.Interproc = cc

	var prep *PreparedProgram
	if !opts.NoPrepCache {
		prep = p.Prepare()
	}
	workers := bopts.Workers
	if opts.Tracer != nil && opts.Tracer.Enabled() {
		if !opts.TraceParallel {
			workers = 1
		}
		opts.Tracer = obs.NewSequencer(opts.Tracer)
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	n := cg.NumSCCs()
	deps := make([][]int, n)
	recursive := 0
	for c := 0; c < n; c++ {
		deps[c] = cg.Deps(c)
		if cg.Recursive(c) {
			recursive++
		}
	}

	funcs := p.IR.Funcs
	plans := make([]*rewrite.FuncPlan, len(funcs))
	planOf := make(map[string]int, len(funcs))
	for i, fn := range funcs {
		planOf[fn.Name] = i
	}
	var hits, misses atomic.Int64

	stats, err := par.RunDAG(ctx, deps, workers, func(c int) error {
		members := cg.Members(c)
		local := func(callee string) bool { return cg.SCCOf(callee) == c }
		for _, fn := range members {
			ff := pf.ByFunc[fn.Name]
			if ff == nil {
				return fmt.Errorf("callcost: no frequency info for %s", fn.Name)
			}
			pfn := (*pipeline.FuncCache)(nil)
			if prep != nil {
				pfn = prep.Func(fn.Name)
			}
			if pfn == nil {
				pfn = regalloc.Prepare(fn)
			}
			// Count summary consumption before this component publishes:
			// a hit is a call site whose callee's summary is already on
			// the table — exactly the sites the cost model and the save
			// placement refine. Same-component callees are not yet
			// published, so recursive calls count as misses, matching
			// their static treatment.
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op != ir.OpCall {
						continue
					}
					if cc != nil && cc.Lookup(b.Instrs[i].Callee) != nil {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
			}
			fa, err := regalloc.AllocatePrepared(pfn, ff, config, strat, rewrite.InsertSpills, opts)
			if err != nil {
				return err
			}
			if err := rewrite.Validate(fa); err != nil {
				return fmt.Errorf("callcost: %s produced an invalid allocation: %w", strat.Name(), err)
			}
			plans[planOf[fn.Name]] = rewrite.BuildPlanInterproc(fa, cc)
		}
		if cc == nil {
			return nil
		}
		// Publish after every member is allocated. A recursive
		// component publishes the member-wise union for each member —
		// exact, because every member reaches every other, so they
		// share one transitive clobber set.
		sums := make([]*interproc.Summary, len(members))
		for i, fn := range members {
			sums[i] = rewrite.Summarize(plans[planOf[fn.Name]], cc, local)
		}
		if cg.Recursive(c) {
			u := rewrite.UnionSummaries(sums...)
			for _, fn := range members {
				cc.Publish(fn.Name, u)
			}
		} else {
			cc.Publish(members[0].Name, sums[0])
		}
		return nil
	})
	if err != nil {
		return nil, BatchStats{}, err
	}

	bs := BatchStats{
		SCCs:          n,
		Recursive:     recursive,
		Waves:         len(cg.Waves()),
		ReadyPeak:     stats.ReadyPeak,
		SummaryHits:   int(hits.Load()),
		SummaryMisses: int(misses.Load()),
	}
	if b := telemetry.B(); b != nil {
		b.BatchWaves.Add(int64(bs.Waves))
		b.BatchReadyPeak.Set(int64(bs.ReadyPeak))
		b.InterprocSummaryHits.Add(hits.Load())
	}

	a := &Allocation{
		Program:  p,
		Config:   config,
		Strategy: strat.Name(),
		Plans:    make(map[string]*rewrite.FuncPlan, len(funcs)),
	}
	for i, fn := range funcs {
		a.Plans[fn.Name] = plans[i]
	}
	return a, bs, nil
}
