package callcost_test

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/telemetry"
)

// runCounted register-allocates one benchprog program with a fresh
// telemetry registry and returns the counter snapshot plus the
// allocation. With parallel > 1 the span recorder rides along under
// Options.TraceParallel, so events interleave across workers — the
// shape the -race job has to prove safe.
func runCounted(t *testing.T, src string, parallel int) (map[string]int64, *callcost.Allocation) {
	t.Helper()
	prog, err := callcost.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	b := telemetry.Enable(nil)
	defer telemetry.Disable()

	// Both arms trace through a live span recorder: a traced run takes
	// a different (re-coalescing) round-0 path than an untraced one, so
	// tracing must be equal on both sides for the counters to compare.
	spans := telemetry.NewSpanRecorder(0)
	opts := callcost.WithTracer(callcost.DefaultAllocOptions(), spans)
	opts.Parallel = parallel
	opts.TraceParallel = true
	defer spans.Flush()
	alloc, err := prog.AllocateWithOptions(callcost.ImprovedAll(),
		callcost.NewConfig(6, 4, 0, 0), prog.StaticFreq(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return b.Reg.Snapshot().Counters, alloc
}

// TestTelemetryParallelCountsMatchSequential is the correctness
// contract of the telemetry layer under Options.Parallel: a parallel
// run with a live span recorder and an enabled registry must produce
// the same deterministic counter totals as the sequential run, and the
// allocation itself must stay byte-identical to a run with telemetry
// disabled. Run under -race this doubles as the concurrency stress of
// the registry, the span recorder, and every instrumentation site.
func TestTelemetryParallelCountsMatchSequential(t *testing.T) {
	// Deterministic counters: identical work happens regardless of
	// scheduling. sync.Pool recycling (pool_simplifier_news_total) and
	// the utilization gauges are inherently scheduling-dependent and
	// excluded.
	deterministic := []string{
		"alloc_funcs_total", "alloc_rounds_total", "alloc_spilled_regs_total",
		"pass_runs_total", "pool_simplifier_gets_total",
		"prep_live_hits_total", "prep_live_misses_total",
		"prep_graph_hits_total", "prep_graph_misses_total",
		"cow_snapshots_total", "par_tasks_total",
	}
	for _, p := range benchprog.All() {
		t.Run(p.Name, func(t *testing.T) {
			seqCounts, seqAlloc := runCounted(t, p.Source, 1)
			parCounts, parAlloc := runCounted(t, p.Source, 8)

			if seqCounts["alloc_spilled_regs_total"] == 0 {
				t.Errorf("benchprog %s never spills at (6,4,0,0) — stress run too easy", p.Name)
			}
			for _, name := range deterministic {
				if seqCounts[name] != parCounts[name] {
					t.Errorf("%s: sequential %d vs parallel %d", name, seqCounts[name], parCounts[name])
				}
			}

			// Telemetry + parallel tracing must not change the output.
			prog, err := callcost.Compile(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			bare, err := prog.AllocateWithOptions(callcost.ImprovedAll(),
				callcost.NewConfig(6, 4, 0, 0), prog.StaticFreq(), callcost.DefaultAllocOptions())
			if err != nil {
				t.Fatal(err)
			}
			comparePlans(t, p.Name+" telemetry-sequential", bare, seqAlloc)
			comparePlans(t, p.Name+" telemetry-parallel", bare, parAlloc)
		})
	}
}

// TestTraceParallelSequencerCoversEveryEvent checks the Seq contract
// under interleaved emission: a concurrency-safe counting sink sees
// every sequence number 1..N exactly once even with 8 workers.
func TestTraceParallelSequencerCoversEveryEvent(t *testing.T) {
	p := benchprog.ByName("fpppp")
	prog, err := callcost.Compile(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	sink := &seqSink{seen: make(map[uint64]int)}
	opts := callcost.WithTracer(callcost.DefaultAllocOptions(), sink)
	opts.Parallel = 8
	opts.TraceParallel = true
	if _, err := prog.AllocateWithOptions(callcost.ImprovedAll(),
		callcost.NewConfig(6, 4, 0, 0), prog.StaticFreq(), opts); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.seen) == 0 {
		t.Fatal("no events emitted")
	}
	for n := uint64(1); n <= uint64(len(sink.seen)); n++ {
		if sink.seen[n] != 1 {
			t.Fatalf("seq %d emitted %d times, want exactly once (of %d events)",
				n, sink.seen[n], len(sink.seen))
		}
	}
}

type seqSink struct {
	mu   sync.Mutex
	seen map[uint64]int
}

func (s *seqSink) Enabled() bool { return true }
func (s *seqSink) Emit(ev callcost.TraceEvent) {
	s.mu.Lock()
	s.seen[ev.Seq]++
	s.mu.Unlock()
}
