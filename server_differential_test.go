package callcost_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/ir"
	"repro/internal/server"
)

// serverStrategies are the strategy tiers the service differential
// covers: the paper's improved allocator plus both graph-free tiers.
var serverStrategies = []string{"improved", "linscan", "hybrid"}

func postAllocate(t *testing.T, client *http.Client, url string, req *server.Request) *server.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /allocate: status %d: %s", resp.StatusCode, raw)
	}
	var r server.Response
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	return &r
}

// TestServerMatchesInProcess is the service differential gate: for
// every benchmark program and every covered strategy, the daemon's
// served result — colors, spill slots, assembly, overhead totals —
// must be byte-identical to the in-process
// Program.AllocateWithOptions path, and a warm second request must
// reproduce the same bytes entirely from the content-addressed cache.
func TestServerMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark-suite differential; skipped in -short")
	}
	s := server.New(server.Options{QueueSize: 64})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{}

	for _, p := range benchprog.All() {
		for _, strat := range serverStrategies {
			t.Run(fmt.Sprintf("%s/%s", p.Name, strat), func(t *testing.T) {
				req := server.Request{
					Source:   p.Source,
					Config:   server.ConfigRequest{RI: 8, RF: 6, EI: 4, EF: 4},
					Strategy: strat,
				}
				want, err := server.ReferenceResult(&req)
				if err != nil {
					t.Fatalf("in-process reference: %v", err)
				}
				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}

				cold := postAllocate(t, client, ts.URL, &req)
				coldJSON, err := json.Marshal(cold.Result)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(coldJSON, wantJSON) {
					t.Errorf("cold served result differs from in-process oracle:\nserved: %.600s\noracle: %.600s",
						coldJSON, wantJSON)
				}
				if cold.CacheHits != 0 {
					t.Errorf("cold request reported %d cache hits, want 0", cold.CacheHits)
				}

				warm := postAllocate(t, client, ts.URL, &req)
				warmJSON, err := json.Marshal(warm.Result)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(warmJSON, wantJSON) {
					t.Errorf("warm served result differs from in-process oracle:\nserved: %.600s\noracle: %.600s",
						warmJSON, wantJSON)
				}
				if warm.CacheMisses != 0 || warm.CacheHits != len(want.Funcs) {
					t.Errorf("warm request: hits=%d misses=%d, want hits=%d misses=0",
						warm.CacheHits, warm.CacheMisses, len(want.Funcs))
				}
			})
		}
	}
}

// TestServerWireIRMatchesSource: a request carrying the serialized IR
// of a program must produce exactly the bytes the MC-source form of
// the same program produces — the two request encodings are one cache
// population, not two.
func TestServerWireIRMatchesSource(t *testing.T) {
	s := server.New(server.Options{QueueSize: 64})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{}

	for _, name := range []string{"ear", "eqntott", "compress"} {
		p := benchprog.ByName(name)
		if p == nil {
			t.Fatalf("no benchmark program %s", name)
		}
		prog, err := callcost.Compile(p.Source)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		wire, err := ir.EncodeProgram(prog.IR)
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		for _, strat := range serverStrategies {
			t.Run(fmt.Sprintf("%s/%s", name, strat), func(t *testing.T) {
				config := server.ConfigRequest{RI: 8, RF: 6, EI: 4, EF: 4}
				fromSource := postAllocate(t, client, ts.URL, &server.Request{
					Source: p.Source, Config: config, Strategy: strat,
				})
				fromWire := postAllocate(t, client, ts.URL, &server.Request{
					IR: wire, Config: config, Strategy: strat,
				})
				sj, err := json.Marshal(fromSource.Result)
				if err != nil {
					t.Fatal(err)
				}
				wj, err := json.Marshal(fromWire.Result)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sj, wj) {
					t.Errorf("wire-IR result differs from source result:\nwire:   %.600s\nsource: %.600s", wj, sj)
				}
				// The wire form hashes to the same per-function keys, so
				// whichever request ran second is a full cache hit.
				if fromWire.CacheMisses != 0 {
					t.Errorf("wire-IR request missed the cache %d times after the source request populated it",
						fromWire.CacheMisses)
				}
			})
		}
	}
}
