package callcost

import (
	"math"
	"testing"

	"repro/internal/machine"
)

// testProgram exercises calls on hot paths, loops, both banks, globals,
// arrays, and recursion — enough register pressure to force spills at
// small configurations.
const testProgram = `
int table[64];
float weights[32];
int gcalls = 0;

int leaf(int x) { gcalls = gcalls + 1; return x * 3 + 1; }

float fleaf(float x, float y) { return x * y + 0.5; }

int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}

int hot(int n) {
	int i; int acc = 0;
	float facc = 0.0;
	for (i = 0; i < n; i = i + 1) {
		int a = i * 2; int b = a + i; int c = b * a - i;
		int d = c % 7; int e = d + b;
		acc = acc + leaf(e) + a - d;
		facc = facc + fleaf(float(i), 0.25) * 0.5;
		table[i % 64] = acc + c;
	}
	return acc + int(facc);
}

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 8; i = i + 1) {
		weights[i % 32] = float(i) * 1.5;
		sum = sum + hot(24) + fib(8) + int(weights[i % 32]);
	}
	return sum + gcalls + table[5];
}
`

func allStrategies() map[string]Strategy {
	m := Strategies()
	m["improved-sc"] = Improved(true, false, false)
	m["improved-sc-bs"] = Improved(true, true, false)
	m["improved-opt"] = ImprovedOptimistic()
	m["priority-remove"] = Priority(PriorityRemovingUnconstrained)
	m["priority-sortunc"] = Priority(PrioritySortingUnconstrained)
	return m
}

// TestAllStrategiesPreserveSemantics is the master differential test:
// for every strategy and several register configurations, the allocated
// program executed at machine level must produce the reference result.
func TestAllStrategiesPreserveSemantics(t *testing.T) {
	prog := MustCompile(testProgram)
	ref, err := prog.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	configs := machine.ShortSweep()
	for name, strat := range allStrategies() {
		for _, cfg := range configs {
			alloc, err := prog.Allocate(strat, cfg, pf)
			if err != nil {
				t.Errorf("%s at %s: allocate: %v", name, cfg, err)
				continue
			}
			res, err := alloc.Execute()
			if err != nil {
				t.Errorf("%s at %s: execute: %v", name, cfg, err)
				continue
			}
			if res.RetInt != ref.RetInt {
				t.Errorf("%s at %s: returned %d, reference %d", name, cfg, res.RetInt, ref.RetInt)
			}
		}
	}
}

// TestAnalyticMatchesMeasured checks that the analytic cost model under
// exact profile frequencies equals the overhead counted by actually
// executing the allocation.
func TestAnalyticMatchesMeasured(t *testing.T) {
	prog := MustCompile(testProgram)
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	for name, strat := range allStrategies() {
		for _, cfg := range []Config{NewConfig(6, 4, 0, 0), NewConfig(8, 6, 4, 4), FullMachine()} {
			alloc, err := prog.Allocate(strat, cfg, pf)
			if err != nil {
				t.Fatalf("%s at %s: %v", name, cfg, err)
			}
			analytic := alloc.Overhead(pf)
			measured, _, err := alloc.MeasuredOverhead()
			if err != nil {
				t.Fatalf("%s at %s: execute: %v", name, cfg, err)
			}
			if !closeTo(analytic.Spill, measured.Spill) ||
				!closeTo(analytic.Caller, measured.Caller) ||
				!closeTo(analytic.Callee, measured.Callee) ||
				!closeTo(analytic.Shuffle, measured.Shuffle) {
				t.Errorf("%s at %s: analytic %v != measured %v", name, cfg, analytic, measured)
			}
		}
	}
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(math.Abs(a)+math.Abs(b))+1e-9
}

// TestStaticFreqAllocationsAreValid runs every strategy under static
// (estimated) weights too: costs differ but semantics must hold.
func TestStaticFreqAllocationsAreValid(t *testing.T) {
	prog := MustCompile(testProgram)
	ref, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	pf := prog.StaticFreq()
	for name, strat := range allStrategies() {
		alloc, err := prog.Allocate(strat, NewConfig(7, 5, 2, 2), pf)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		res, err := alloc.Execute()
		if err != nil {
			t.Errorf("%s: execute: %v", name, err)
			continue
		}
		if res.RetInt != ref.RetInt {
			t.Errorf("%s: returned %d, reference %d", name, res.RetInt, ref.RetInt)
		}
	}
}

// TestImprovedBeatsBase verifies the headline claim on a call-heavy
// program: improved Chaitin (SC+BS+PR) produces no more overhead than
// the base model, and strictly less somewhere in the sweep.
func TestImprovedBeatsBase(t *testing.T) {
	prog := MustCompile(testProgram)
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	strictly := false
	for _, cfg := range machine.Sweep() {
		base, err := prog.Allocate(Chaitin(), cfg, pf)
		if err != nil {
			t.Fatal(err)
		}
		impr, err := prog.Allocate(ImprovedAll(), cfg, pf)
		if err != nil {
			t.Fatal(err)
		}
		b := base.Overhead(pf).Total()
		m := impr.Overhead(pf).Total()
		if m > b*1.05+1 {
			t.Errorf("at %s improved overhead %.0f exceeds base %.0f", cfg, m, b)
		}
		if m < b*0.95 {
			strictly = true
		}
	}
	if !strictly {
		t.Error("improved allocator never strictly beat the base model across the sweep")
	}
}

// TestSpillCostDropsWithMoreRegisters reproduces the Figure 2 shape:
// the spill component of the base allocator falls as registers are
// added.
func TestSpillCostDropsWithMoreRegisters(t *testing.T) {
	prog := MustCompile(testProgram)
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	small, err := prog.Allocate(Chaitin(), NewConfig(6, 4, 0, 0), pf)
	if err != nil {
		t.Fatal(err)
	}
	large, err := prog.Allocate(Chaitin(), FullMachine(), pf)
	if err != nil {
		t.Fatal(err)
	}
	s := small.Overhead(pf)
	l := large.Overhead(pf)
	if l.Spill > s.Spill {
		t.Errorf("spill grew with registers: %.0f -> %.0f", s.Spill, l.Spill)
	}
	if l.Spill > 0 && s.Spill == 0 {
		t.Errorf("full machine spills (%v) while minimum does not (%v)", l, s)
	}
}

// TestVoidProgram exercises allocation of void functions and unused
// results.
func TestVoidProgram(t *testing.T) {
	prog := MustCompile(`
int acc = 0;
void bump(int x) { acc = acc + x; }
int probe() { return acc; }
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) { bump(i); probe(); }
	return probe();
}`)
	ref, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	for name, strat := range Strategies() {
		alloc, err := prog.Allocate(strat, NewConfig(6, 4, 2, 2), pf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := alloc.Execute()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.RetInt != ref.RetInt {
			t.Errorf("%s: got %d, want %d", name, res.RetInt, ref.RetInt)
		}
	}
}

// TestFloatHeavyProgram pressures the float bank specifically.
func TestFloatHeavyProgram(t *testing.T) {
	prog := MustCompile(`
float a[16];
float kernel(float x, float y, float z) {
	float p = x * y; float q = y * z; float r = x * z;
	float s = p + q; float t = q + r; float u = p + r;
	return s * t + u * p - q * r + (s - t) * (u - p);
}
int main() {
	int i;
	float acc = 0.0;
	for (i = 0; i < 12; i = i + 1) {
		a[i] = kernel(float(i), float(i + 1), 0.5) + acc;
		acc = acc + a[i] * 0.25;
	}
	return int(acc);
}`)
	ref, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	for name, strat := range Strategies() {
		for _, cfg := range []Config{NewConfig(6, 4, 0, 0), NewConfig(6, 4, 3, 3)} {
			alloc, err := prog.Allocate(strat, cfg, pf)
			if err != nil {
				t.Fatalf("%s at %s: %v", name, cfg, err)
			}
			res, err := alloc.Execute()
			if err != nil {
				t.Fatalf("%s at %s: %v", name, cfg, err)
			}
			if res.RetInt != ref.RetInt {
				t.Errorf("%s at %s: got %d, want %d", name, cfg, res.RetInt, ref.RetInt)
			}
		}
	}
}

// TestConfigValidation rejects register files below the calling
// convention's minimum.
func TestConfigValidation(t *testing.T) {
	prog := MustCompile(`int main() { return 0; }`)
	pf := prog.StaticFreq()
	if _, err := prog.Allocate(Chaitin(), NewConfig(4, 4, 0, 0), pf); err == nil {
		t.Error("expected rejection of (4,4,0,0)")
	}
	if _, err := prog.Allocate(Chaitin(), NewConfig(6, 2, 0, 0), pf); err == nil {
		t.Error("expected rejection of (6,2,0,0)")
	}
}

// TestDeadParamReceive is the regression test for dead-on-entry
// parameters: p1's incoming value is overwritten before any read, so
// nothing stops an allocator from coalescing `p1 = p0` — unless the
// interference model knows the entry receive still writes p1's
// register, which would clobber p0 if they shared. Every strategy must
// keep the answer right and the analytic/measured overheads equal, at
// an all-caller-save configuration where sharing is most tempting.
func TestDeadParamReceive(t *testing.T) {
	prog := MustCompile(`
int helper(int a, int b) { return a * 10 + b; }

int f(int p0, int p1, int p2) {
	p1 = p0;
	p2 = helper(p1, p0);
	return p2 * 100 + p0;
}

int main() { return f(1, -15, -7); }
`)
	ref, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	for name, strat := range allStrategies() {
		for _, cfg := range []Config{NewConfig(6, 4, 0, 0), NewConfig(8, 6, 4, 4)} {
			alloc, err := prog.Allocate(strat, cfg, pf)
			if err != nil {
				t.Fatalf("%s at %s: %v", name, cfg, err)
			}
			res, err := alloc.Execute()
			if err != nil {
				t.Fatalf("%s at %s: %v", name, cfg, err)
			}
			if res.RetInt != ref.RetInt {
				t.Errorf("%s at %s: returned %d, reference %d (dead param clobbered a live one?)",
					name, cfg, res.RetInt, ref.RetInt)
			}
			analytic := alloc.Overhead(pf)
			measured, _, err := alloc.MeasuredOverhead()
			if err != nil {
				t.Fatalf("%s at %s: %v", name, cfg, err)
			}
			if !closeTo(analytic.Total(), measured.Total()) {
				t.Errorf("%s at %s: analytic %v != measured %v", name, cfg, analytic, measured)
			}
		}
	}
}
