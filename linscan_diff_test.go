package callcost

import (
	"testing"

	"repro/internal/benchprog"
	"repro/internal/linscan"
	"repro/internal/metrics"
)

// TestHoleAwareScanBeatsHulls is the segment-refinement differential:
// on every benchmark program and both invariant configurations, the
// hole-aware scan (segment-intersection conflicts, hole assignment,
// second-chance binpacking) must produce total analytic overhead no
// worse than the conservative hull-overlap ablation
// (Scan.ConservativeHulls, the PR 7 behavior). Segment sets only remove
// conflicts that hulls invent, and every binpacking decision replaces a
// spill the hull scan would have taken, so a regression here means the
// refinement mispriced something.
func TestHoleAwareScanBeatsHulls(t *testing.T) {
	for _, prog := range benchprog.Names() {
		prog := prog
		t.Run(prog, func(t *testing.T) {
			t.Parallel()
			p := MustCompile(benchprog.ByName(prog).Source)
			pf, _, err := p.Profile()
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			for _, config := range invariantConfigs {
				holes, err := p.Allocate(&linscan.Scan{}, config, pf)
				if err != nil {
					t.Fatalf("hole-aware scan at %s: %v", config, err)
				}
				hulls, err := p.Allocate(&linscan.Scan{ConservativeHulls: true}, config, pf)
				if err != nil {
					t.Fatalf("hull scan at %s: %v", config, err)
				}
				ho, hu := holes.Overhead(pf).Total(), hulls.Overhead(pf).Total()
				t.Logf("%s at %s: hole-aware overhead %.1f vs hull %.1f", prog, config, ho, hu)
				if ho > hu {
					t.Errorf("%s at %s: hole-aware scan overhead %.1f exceeds hull scan's %.1f",
						prog, config, ho, hu)
				}
				// Per-function breakdown under -v, for bar derivation and
				// regression forensics.
				if testing.Verbose() {
					for name, plan := range holes.Plans {
						o := metrics.Analytic(plan, pf.ByFunc[name])
						t.Logf("  fn %s: hole-aware overhead %.1f", name, o.Total())
					}
				}
			}
		})
	}
}
